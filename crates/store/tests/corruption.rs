//! Negative tests: every way a snapshot file can be malformed must produce a typed
//! [`StoreError`] — no panics, no unbounded allocations, no silently wrong indexes.
//!
//! These scenarios mirror the `p2h-data` native-format hardening tests
//! (`crates/data/src/io.rs`): truncation at every byte boundary, bad magic, and
//! `dim × count` overflow, plus the container-specific cases (version, kind, CRC,
//! section framing).

use p2h_balltree::{BallTree, BallTreeBuilder};
use p2h_bctree::{BcTree, BcTreeBuilder};
use p2h_core::{LinearScan, PointSet, Scalar};
use p2h_data::{DataDistribution, SyntheticDataset};
use p2h_store::format::HEADER_LEN;
use p2h_store::format::{wire, SnapshotWriter};
use p2h_store::{crc32, IndexKind, Snapshot, StoreError, SECTION_ALIGN};

fn dataset(n: usize, dim: usize) -> PointSet {
    SyntheticDataset::new(
        "store-corruption",
        n,
        dim,
        DataDistribution::GaussianClusters { clusters: 4, std_dev: 1.2 },
        99,
    )
    .generate()
    .unwrap()
}

fn small_ball_snapshot() -> Vec<u8> {
    BallTreeBuilder::new(16).build(&dataset(300, 6)).unwrap().encode_snapshot()
}

/// Patches a section payload byte and fixes the section CRC so only the *semantic*
/// corruption remains (used to reach the validation layer behind the checksums).
fn patch_section(bytes: &mut [u8], tag: &[u8; 4], patch: impl FnOnce(&mut [u8])) {
    // Walk the v2 section chain: 16-byte file header, then 16-byte section headers
    // with payloads zero-padded to the 8-byte boundary.
    let mut pos = HEADER_LEN;
    loop {
        let found: [u8; 4] = bytes[pos..pos + 4].try_into().unwrap();
        let len = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().unwrap()) as usize;
        if &found == tag {
            let payload_start = pos + 16;
            patch(&mut bytes[payload_start..payload_start + len]);
            let crc = crc32(&bytes[payload_start..payload_start + len]);
            bytes[pos + 12..pos + 16].copy_from_slice(&crc.to_le_bytes());
            return;
        }
        pos += 16 + len;
        pos = pos.next_multiple_of(SECTION_ALIGN);
    }
}

#[test]
fn truncation_at_every_byte_boundary_is_typed() {
    let full = small_ball_snapshot();
    assert!(BallTree::decode_snapshot(&full).is_ok());
    for cut in 0..full.len() {
        match BallTree::decode_snapshot(&full[..cut]) {
            Err(
                StoreError::Truncated { .. }
                | StoreError::ChecksumMismatch { .. }
                | StoreError::SectionLength { .. },
            ) => {}
            other => panic!("prefix of {cut} bytes: expected a typed error, got {other:?}"),
        }
    }
}

#[test]
fn bad_magic_wrong_version_unknown_kind() {
    let full = small_ball_snapshot();

    let mut bad_magic = full.clone();
    bad_magic[..4].copy_from_slice(b"NOPE");
    assert!(matches!(
        BallTree::decode_snapshot(&bad_magic),
        Err(StoreError::BadMagic { found: [b'N', b'O', b'P', b'E'] })
    ));

    let mut future_version = full.clone();
    future_version[4..6].copy_from_slice(&7u16.to_le_bytes());
    assert!(matches!(
        BallTree::decode_snapshot(&future_version),
        Err(StoreError::UnsupportedVersion { found: 7, supported: 2 })
    ));

    let mut alien_kind = full.clone();
    alien_kind[6] = 250;
    assert!(matches!(BallTree::decode_snapshot(&alien_kind), Err(StoreError::UnknownKind(250))));
}

#[test]
fn kind_mismatch_is_detected_before_payloads() {
    let scan_bytes = LinearScan::new(dataset(50, 4)).encode_snapshot();
    assert!(matches!(
        BallTree::decode_snapshot(&scan_bytes),
        Err(StoreError::KindMismatch {
            expected: IndexKind::BallTree,
            found: IndexKind::LinearScan
        })
    ));
    assert!(matches!(
        BcTree::decode_snapshot(&scan_bytes),
        Err(StoreError::KindMismatch { expected: IndexKind::BcTree, .. })
    ));
}

#[test]
fn every_section_is_checksum_protected() {
    let full = small_ball_snapshot();
    // Flip one bit in each section payload (without fixing the CRC): the loader must
    // report a checksum mismatch naming that section.
    let mut pos = HEADER_LEN;
    while pos < full.len() {
        let tag: [u8; 4] = full[pos..pos + 4].try_into().unwrap();
        let len = u64::from_le_bytes(full[pos + 4..pos + 12].try_into().unwrap()) as usize;
        assert!(len > 0, "section {tag:?} unexpectedly empty");
        let mut corrupt = full.clone();
        corrupt[pos + 16 + len / 2] ^= 0x01;
        match BallTree::decode_snapshot(&corrupt) {
            Err(StoreError::ChecksumMismatch { section, .. }) => assert_eq!(section, tag),
            other => panic!("flip in section {tag:?}: expected ChecksumMismatch, got {other:?}"),
        }
        pos += 16 + len;
        pos = pos.next_multiple_of(SECTION_ALIGN);
    }
}

#[test]
fn dim_count_overflow_is_typed_not_an_allocation() {
    // A hand-built snapshot whose META declares astronomically large dim × count: the
    // loader must fail with a typed overflow/truncation error before reserving memory.
    let mut writer = SnapshotWriter::new(IndexKind::LinearScan);
    let meta = writer.section(*b"META");
    wire::put_u64(meta, u64::MAX / 2); // dim
    wire::put_u64(meta, u64::MAX / 2); // count
    wire::put_u64(meta, 0); // node count
    wire::put_u64(meta, 0); // leaf size
    wire::put_u64(meta, 0); // seed
    wire::put_u32(meta, 0); // note length
    wire::put_f32_slice(writer.section(*b"PNTS"), &[0.0; 16]);
    let bytes = writer.finish();
    assert!(matches!(LinearScan::decode_snapshot(&bytes), Err(StoreError::Overflow { .. })));

    // dim × count fits, but the PNTS payload cannot hold it: truncated, not a panic.
    let mut writer = SnapshotWriter::new(IndexKind::LinearScan);
    let meta = writer.section(*b"META");
    wire::put_u64(meta, 1_000); // dim
    wire::put_u64(meta, 1 << 40); // count
    wire::put_u64(meta, 0);
    wire::put_u64(meta, 0);
    wire::put_u64(meta, 0);
    wire::put_u32(meta, 0);
    wire::put_f32_slice(writer.section(*b"PNTS"), &[0.0; 16]);
    let bytes = writer.finish();
    assert!(matches!(
        LinearScan::decode_snapshot(&bytes),
        Err(StoreError::Truncated { .. }) | Err(StoreError::Overflow { .. })
    ));
}

#[test]
fn structurally_invalid_trees_are_rejected_after_checksums() {
    // Semantic corruption with valid CRCs: a node array whose root child id points out
    // of range. The NODE section starts with the root: center_offset u32, radius f32,
    // start u32, end u32, left u32, right u32 — patch `left` (bytes 16..20).
    let mut bytes = small_ball_snapshot();
    patch_section(&mut bytes, b"NODE", |payload| {
        payload[16..20].copy_from_slice(&u32::MAX.to_le_bytes());
        payload[20..24].copy_from_slice(&u32::MAX.to_le_bytes());
    });
    // Root becomes a "leaf" covering 300 points with N0 = 16 → structural error.
    assert!(matches!(
        BallTree::decode_snapshot(&bytes),
        Err(StoreError::Invalid(p2h_core::Error::Corrupt(_)))
    ));

    // An id mapping that is not a permutation.
    let mut bytes = small_ball_snapshot();
    patch_section(&mut bytes, b"IDS ", |payload| {
        let dup = payload[4..8].to_vec();
        payload[0..4].copy_from_slice(&dup);
    });
    assert!(matches!(
        BallTree::decode_snapshot(&bytes),
        Err(StoreError::Invalid(p2h_core::Error::Corrupt(_)))
    ));

    // Sibling centers out of adjacency (Ball-Tree layout contract): swap the root's
    // children center offsets.
    let mut bytes = small_ball_snapshot();
    patch_section(&mut bytes, b"NODE", |payload| {
        // Nodes are 24 bytes; node 1 and 2 are the root's children. Their center
        // offsets live at 24 and 48.
        let a = payload[24..28].to_vec();
        let b = payload[48..52].to_vec();
        payload[24..28].copy_from_slice(&b);
        payload[48..52].copy_from_slice(&a);
    });
    assert!(matches!(
        BallTree::decode_snapshot(&bytes),
        Err(StoreError::Invalid(p2h_core::Error::Corrupt(_)))
    ));
}

#[test]
fn bc_tree_corruption_is_equally_covered() {
    let tree = BcTreeBuilder::new(16).build(&dataset(300, 6)).unwrap();
    let full = tree.encode_snapshot();
    assert!(BcTree::decode_snapshot(&full).is_ok());
    for cut in [0, 5, 11, 40, full.len() / 2, full.len() - 1] {
        assert!(BcTree::decode_snapshot(&full[..cut]).is_err(), "prefix {cut}");
    }
    // Shrink the AUXD section: the count no longer matches META.
    let mut missing_aux = Vec::from(&full[..full.len() - 12]);
    // Fix up nothing — the AUXD section header now over-declares its length.
    assert!(BcTree::decode_snapshot(&missing_aux).is_err());
    missing_aux.extend_from_slice(&[0u8; 12]);
    // Right length, wrong bytes → checksum mismatch.
    assert!(matches!(
        BcTree::decode_snapshot(&missing_aux),
        Err(StoreError::ChecksumMismatch { .. })
    ));
}

#[test]
fn trailing_bytes_are_rejected() {
    let mut bytes = small_ball_snapshot();
    bytes.extend_from_slice(b"extra");
    assert!(matches!(
        BallTree::decode_snapshot(&bytes),
        Err(StoreError::TrailingBytes { count: 5 })
    ));
}

#[test]
fn scalar_type_is_f32() {
    // The format stores 4-byte floats; if `Scalar` ever widens, the wire format (and
    // this guard) must be revisited.
    assert_eq!(std::mem::size_of::<Scalar>(), 4);
}
