//! Round-trip property: `load(save(index))` answers queries bit-identically to the
//! in-memory original, for every index kind, on ≥5k-point datasets.

use std::path::PathBuf;

use p2h_balltree::{BallTree, BallTreeBuilder};
use p2h_bctree::{BcTree, BcTreeBuilder};
use p2h_core::{HyperplaneQuery, LinearScan, P2hIndex, PointSet, SearchParams};
use p2h_data::{generate_queries, DataDistribution, QueryDistribution, SyntheticDataset};
use p2h_hash::{FhIndex, FhParams, NhIndex, NhParams};
use p2h_store::{snapshot_meta, IndexKind, Snapshot, Store, StoreError};

fn dataset(n: usize, dim: usize, seed: u64) -> PointSet {
    SyntheticDataset::new(
        "store-roundtrip",
        n,
        dim,
        DataDistribution::GaussianClusters { clusters: 8, std_dev: 1.4 },
        seed,
    )
    .generate()
    .unwrap()
}

fn queries(ps: &PointSet, count: usize) -> Vec<HyperplaneQuery> {
    generate_queries(ps, count, QueryDistribution::DataDifference, 321).unwrap()
}

fn temp_dir(name: &str) -> PathBuf {
    let mut dir = std::env::temp_dir();
    dir.push(format!("p2h-store-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Asserts that two indexes return *bit-identical* results: same neighbor ids, same
/// distances down to the float bits, for exact and budgeted searches.
fn assert_bit_identical(original: &dyn P2hIndex, loaded: &dyn P2hIndex, ps: &PointSet) {
    assert_eq!(original.len(), loaded.len());
    assert_eq!(original.dim(), loaded.dim());
    for (qi, q) in queries(ps, 10).iter().enumerate() {
        for params in
            [SearchParams::exact(1), SearchParams::exact(10), SearchParams::approximate(10, 500)]
        {
            let a = original.search(q, &params);
            let b = loaded.search(q, &params);
            assert_eq!(a.neighbors, b.neighbors, "query {qi}, params {params:?}");
            let bits = |r: &p2h_core::SearchResult| {
                r.neighbors.iter().map(|n| n.distance.to_bits()).collect::<Vec<_>>()
            };
            assert_eq!(bits(&a), bits(&b), "query {qi}: distances must match bitwise");
        }
    }
}

#[test]
fn ball_tree_round_trips_bit_identically() {
    let ps = dataset(6_000, 16, 1);
    let tree = BallTreeBuilder::new(64).with_seed(9).build(&ps).unwrap();
    let loaded = BallTree::decode_snapshot(&tree.encode_snapshot()).unwrap();
    assert_eq!(loaded.nodes(), tree.nodes());
    assert_eq!(loaded.centers(), tree.centers());
    assert_eq!(loaded.original_ids(), tree.original_ids());
    assert_eq!(loaded.leaf_size(), tree.leaf_size());
    assert_eq!(loaded.build_seed(), 9);
    loaded.check_invariants().unwrap();
    assert_bit_identical(&tree, &loaded, &ps);
}

#[test]
fn bc_tree_round_trips_bit_identically() {
    let ps = dataset(6_000, 16, 2);
    let tree = BcTreeBuilder::new(64).with_seed(4).build(&ps).unwrap();
    let loaded = BcTree::decode_snapshot(&tree.encode_snapshot()).unwrap();
    assert_eq!(loaded.nodes(), tree.nodes());
    assert_eq!(loaded.centers(), tree.centers());
    assert_eq!(loaded.center_norms(), tree.center_norms());
    assert_eq!(loaded.leaf_aux(), tree.leaf_aux());
    assert_eq!(loaded.build_seed(), 4);
    loaded.check_invariants().unwrap();
    assert_bit_identical(&tree, &loaded, &ps);
}

#[test]
fn linear_scan_round_trips_bit_identically() {
    let ps = dataset(5_000, 12, 3);
    let scan = LinearScan::new(ps.clone());
    let loaded = LinearScan::decode_snapshot(&scan.encode_snapshot()).unwrap();
    assert_eq!(loaded.points(), scan.points());
    assert_bit_identical(&scan, &loaded, &ps);
}

#[test]
fn nh_index_round_trips_bit_identically() {
    let ps = dataset(5_000, 12, 7);
    let nh = NhIndex::build(&ps, NhParams::new(2, 12).with_seed(31)).unwrap();
    let bytes = nh.encode_snapshot();
    let loaded = NhIndex::decode_snapshot(&bytes).unwrap();
    assert_eq!(loaded.params(), nh.params());
    assert_eq!(loaded.alignment_constant(), nh.alignment_constant());
    assert_eq!(loaded.lambda(), nh.lambda());
    assert_eq!(loaded.transform().pairs(), nh.transform().pairs());
    assert_eq!(loaded.tables().directions(), nh.tables().directions());
    assert_eq!(loaded.tables().values(), nh.tables().values());
    assert_eq!(loaded.tables().ids(), nh.tables().ids());
    assert_bit_identical(&nh, &loaded, &ps);

    let (kind, meta) = snapshot_meta(&bytes).unwrap();
    assert_eq!(kind, IndexKind::Nh);
    assert_eq!(meta.build_seed, 31);

    // Truncations across the projection-matrix sections are typed errors (the tree
    // suites already sweep every byte boundary; here a coarse sweep keeps runtime sane).
    for len in (0..bytes.len()).step_by(4099) {
        assert!(NhIndex::decode_snapshot(&bytes[..len]).is_err(), "truncation at {len}");
    }
    // A flipped bit in the last section (the projection tables) fails the checksum.
    let mut corrupt = bytes.clone();
    let last = corrupt.len() - 1;
    corrupt[last] ^= 0x10;
    assert!(matches!(NhIndex::decode_snapshot(&corrupt), Err(StoreError::ChecksumMismatch { .. })));
}

#[test]
fn fh_index_round_trips_bit_identically() {
    let ps = dataset(5_000, 12, 8);
    let fh = FhIndex::build(&ps, FhParams::new(2, 8, 3).with_seed(13)).unwrap();
    let bytes = fh.encode_snapshot();
    let loaded = FhIndex::decode_snapshot(&bytes).unwrap();
    assert_eq!(loaded.params(), fh.params());
    assert_eq!(loaded.partition_count(), fh.partition_count());
    for p in 0..fh.partition_count() {
        assert_eq!(loaded.partition_ids(p), fh.partition_ids(p));
        assert_eq!(loaded.partition_tables(p).values(), fh.partition_tables(p).values());
        assert_eq!(loaded.partition_tables(p).ids(), fh.partition_tables(p).ids());
    }
    assert_bit_identical(&fh, &loaded, &ps);

    let (kind, meta) = snapshot_meta(&bytes).unwrap();
    assert_eq!(kind, IndexKind::Fh);
    assert_eq!(meta.count, 5_000);

    for len in (0..bytes.len()).step_by(4231) {
        assert!(FhIndex::decode_snapshot(&bytes[..len]).is_err(), "truncation at {len}");
    }
    let mut corrupt = bytes.clone();
    let last = corrupt.len() - 1;
    corrupt[last] ^= 0x02;
    assert!(matches!(FhIndex::decode_snapshot(&corrupt), Err(StoreError::ChecksumMismatch { .. })));
}

#[test]
fn hash_baselines_store_and_dispatch_by_kind() {
    let dir = temp_dir("hash-store");
    let ps = dataset(2_000, 8, 9);
    let nh = NhIndex::build(&ps, NhParams::new(2, 8).with_seed(1)).unwrap();
    let fh = FhIndex::build(&ps, FhParams::new(2, 8, 2).with_seed(1)).unwrap();

    let store = Store::create(&dir).unwrap();
    store.save("nh", &nh).unwrap();
    store.save("fh", &fh).unwrap();
    let all = store.load_all().unwrap();
    let kinds: Vec<IndexKind> = all.iter().map(|(_, index)| index.kind()).collect();
    assert_eq!(kinds, vec![IndexKind::Fh, IndexKind::Nh]);
    for (name, index) in &all {
        let original: &dyn P2hIndex = if name == "nh" { &nh } else { &fh };
        assert_bit_identical(original, index.as_index(), &ps);
    }
    // Cross-kind confusion stays typed.
    assert!(matches!(
        store.load::<NhIndex>("fh"),
        Err(StoreError::KindMismatch { expected: IndexKind::Nh, found: IndexKind::Fh })
    ));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn snapshot_meta_peeks_without_full_load() {
    let ps = dataset(5_000, 10, 4);
    let tree = BcTreeBuilder::new(50).with_seed(77).build(&ps).unwrap();
    let bytes = tree.encode_snapshot();
    let (kind, meta) = snapshot_meta(&bytes).unwrap();
    assert_eq!(kind, IndexKind::BcTree);
    assert_eq!(meta.dim, 11);
    assert_eq!(meta.count, 5_000);
    assert_eq!(meta.leaf_size, 50);
    assert_eq!(meta.build_seed, 77);
    assert_eq!(meta.node_count, tree.node_count());
    assert!(meta.note.contains("kernel-backend independent"), "{}", meta.note);
}

#[test]
fn store_saves_and_loads_named_indexes() {
    let dir = temp_dir("store");
    let ps = dataset(5_000, 12, 5);
    let ball = BallTreeBuilder::new(100).with_seed(1).build(&ps).unwrap();
    let bc = BcTreeBuilder::new(100).with_seed(1).build(&ps).unwrap();
    let scan = LinearScan::new(ps.clone());

    let store = Store::create(&dir).unwrap();
    store.save("ball", &ball).unwrap();
    store.save("bc", &bc).unwrap();
    store.save("scan", &scan).unwrap();
    assert_eq!(store.names().unwrap(), vec!["ball", "bc", "scan"]);

    // Re-open from scratch (a fresh process would do exactly this).
    let reopened = Store::open(&dir).unwrap();
    let loaded: BallTree = reopened.load("ball").unwrap();
    assert_bit_identical(&ball, &loaded, &ps);
    let loaded: BcTree = reopened.load("bc").unwrap();
    assert_bit_identical(&bc, &loaded, &ps);

    // Kind-dispatched loading.
    let all = reopened.load_all().unwrap();
    assert_eq!(all.len(), 3);
    let kinds: Vec<IndexKind> = all.iter().map(|(_, index)| index.kind()).collect();
    assert_eq!(kinds, vec![IndexKind::BallTree, IndexKind::BcTree, IndexKind::LinearScan]);
    for (name, index) in &all {
        let original: &dyn P2hIndex = match name.as_str() {
            "ball" => &ball,
            "bc" => &bc,
            _ => &scan,
        };
        assert_bit_identical(original, index.as_index(), &ps);
    }

    // Asking for the wrong concrete type is a typed error.
    assert!(matches!(
        reopened.load::<BcTree>("ball"),
        Err(StoreError::KindMismatch { expected: IndexKind::BcTree, found: IndexKind::BallTree })
    ));
    assert!(matches!(reopened.load::<BallTree>("missing"), Err(StoreError::MissingEntry(_))));

    // Re-saving under an existing name replaces the snapshot.
    let smaller = BallTreeBuilder::new(32).with_seed(2).build(&ps).unwrap();
    store.save("ball", &smaller).unwrap();
    let reloaded: BallTree = store.load("ball").unwrap();
    assert_eq!(reloaded.leaf_size(), 32);
    assert_eq!(store.names().unwrap().len(), 3);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn store_rejects_bad_names_and_missing_dirs() {
    let dir = temp_dir("validation");
    assert!(matches!(Store::open(&dir), Err(StoreError::Io { .. })));
    let store = Store::create(&dir).unwrap();
    let ps = dataset(100, 4, 6);
    let scan = LinearScan::new(ps);
    for bad in ["", "../escape", "has space", ".hidden"] {
        assert!(matches!(store.save(bad, &scan), Err(StoreError::InvalidName(_))), "{bad}");
    }
    std::fs::remove_dir_all(&dir).ok();
}
