//! Robustness tests for the storage layer: EINTR-retry loops around the raw syscall
//! paths, the configurable stale-file sweep grace window, and the future-mtime skip.
//!
//! The fault rules installed here are process-global (`p2h_obs::fault`), so every
//! test in this binary serializes on one mutex — cargo runs test *binaries*
//! sequentially, so rules set here cannot leak into other suites.

use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, SystemTime};

use p2h_core::{LinearScan, PointSet};
use p2h_data::{DataDistribution, SyntheticDataset};
use p2h_obs::fault;
use p2h_store::{LoadMode, Store, StoreError};

static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn serialize() -> MutexGuard<'static, ()> {
    FAULT_LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn dataset(n: usize, seed: u64) -> PointSet {
    SyntheticDataset::new("store-robustness", n, 6, DataDistribution::Uniform { scale: 2.0 }, seed)
        .generate()
        .unwrap()
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("p2h-robust-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn eintr_retries() -> u64 {
    p2h_obs::global()
        .snapshot()
        .series("p2h_store_eintr_retries_total", &[])
        .map_or(0, |s| s.value.scalar())
}

fn future_skips() -> u64 {
    p2h_obs::global()
        .snapshot()
        .series("p2h_store_sweep_future_skips_total", &[])
        .map_or(0, |s| s.value.scalar())
}

/// Satellite 1: a transient EINTR (rate 0.5) never aborts a snapshot load — the
/// retry loop reissues the interrupted syscall and the load succeeds bit-for-bit,
/// under both load modes.
#[test]
fn transient_eintr_never_aborts_a_snapshot_load() {
    let _guard = serialize();
    let ps = dataset(300, 11);
    let dir = temp_dir("eintr-transient");
    let store = Store::create(&dir).unwrap();
    store.save("scan", &LinearScan::new(ps.clone())).unwrap();

    let retries_before = eintr_retries();
    fault::set_spec("store.read:eintr:0.5:1234").unwrap();
    for mode in [LoadMode::Copy, LoadMode::Mmap] {
        // Reopen (manifest read + sweep) and load under injection, repeatedly so the
        // 50% rule interrupts many individual syscalls across both paths.
        for _ in 0..8 {
            let reopened = Store::open_with(&dir, mode).unwrap();
            let loaded: LinearScan = reopened.load("scan").unwrap();
            assert_eq!(loaded.points().len(), ps.len());
            assert_eq!(loaded.points().dim(), ps.dim());
        }
    }
    fault::set_rules(Vec::new());
    assert!(
        eintr_retries() > retries_before,
        "the 50% EINTR rule must actually have interrupted some syscalls"
    );
}

/// Satellite 1, failure side: an EINTR that persists past the retry cap surfaces as
/// a typed I/O error, not a hang or panic.
#[test]
fn persistent_eintr_is_a_typed_error() {
    let _guard = serialize();
    let ps = dataset(120, 12);
    let dir = temp_dir("eintr-persistent");
    let store = Store::create(&dir).unwrap();
    store.save("scan", &LinearScan::new(ps)).unwrap();

    fault::set_spec("store.read:eintr:1:7").unwrap();
    let err = Store::open(&dir).unwrap_err();
    fault::set_rules(Vec::new());
    match err {
        StoreError::Io { message, .. } => {
            assert!(
                message.contains("EINTR"),
                "the typed error must name the persistent interruption: {message}"
            );
        }
        other => panic!("expected a typed Io error, got {other:?}"),
    }
    // With injection cleared the same store opens fine — nothing was corrupted.
    let _: LinearScan = Store::open(&dir).unwrap().load("scan").unwrap();
}

/// Satellite 1, write side: EINTR during the atomic save path (tmp write + rename)
/// is absorbed the same way.
#[test]
fn transient_eintr_never_aborts_a_save() {
    let _guard = serialize();
    let ps = dataset(150, 13);
    let dir = temp_dir("eintr-save");
    let store = Store::create(&dir).unwrap();

    fault::set_spec("store.write:eintr:0.5:99").unwrap();
    for epoch in 0..6 {
        store.save("scan", &LinearScan::new(ps.clone())).unwrap_or_else(|e| {
            panic!("save under transient EINTR failed at epoch {epoch}: {e:?}")
        });
    }
    fault::set_rules(Vec::new());
    let _: LinearScan = store.load("scan").unwrap();
}

/// Satellite 3: the grace window is a per-handle knob — zero grace sweeps a fresh
/// leftover immediately, a large grace protects it.
#[test]
fn sweep_grace_is_configurable() {
    let _guard = serialize();
    let ps = dataset(100, 14);
    let dir = temp_dir("grace");
    let store = Store::create(&dir).unwrap();
    store.save("live", &LinearScan::new(ps)).unwrap();

    let leftover = dir.join("live.e7.p2hs");
    std::fs::write(&leftover, b"crash leftover").unwrap();

    // A generous grace (what a conservative P2H_SWEEP_GRACE_SECS deployment would
    // set) leaves the fresh file alone.
    let patient = store.clone().with_sweep_grace(Duration::from_secs(7200));
    assert_eq!(patient.sweep_grace(), Duration::from_secs(7200));
    assert_eq!(patient.sweep_now().unwrap(), 0);
    assert!(leftover.exists(), "file inside the grace window must survive");

    // Zero grace reclaims it on the very next sweep.
    let eager = store.with_sweep_grace(Duration::ZERO);
    assert_eq!(eager.sweep_now().unwrap(), 1);
    assert!(!leftover.exists(), "zero grace must sweep the leftover immediately");
}

/// Satellite 3: a file whose mtime lies in the future is not provably stale and must
/// survive even a zero-grace sweep (and be counted as skipped).
#[test]
fn future_mtime_files_are_skipped_not_swept() {
    let _guard = serialize();
    let ps = dataset(100, 15);
    let dir = temp_dir("future");
    let store = Store::create(&dir).unwrap();
    store.save("live", &LinearScan::new(ps)).unwrap();

    let from_the_future = dir.join("live.e9.p2hs");
    std::fs::write(&from_the_future, b"clock skew").unwrap();
    std::fs::File::options()
        .write(true)
        .open(&from_the_future)
        .and_then(|f| f.set_modified(SystemTime::now() + Duration::from_secs(3600)))
        .expect("set future mtime");

    let skips_before = future_skips();
    let eager = store.with_sweep_grace(Duration::ZERO);
    assert_eq!(eager.sweep_now().unwrap(), 0);
    assert!(from_the_future.exists(), "future-mtime files must not be treated as stale");
    assert_eq!(future_skips(), skips_before + 1, "the skip must be visible in metrics");

    // Once its mtime is back in the (aged) past, the same file is fair game.
    std::fs::File::options()
        .write(true)
        .open(&from_the_future)
        .and_then(|f| f.set_modified(SystemTime::now() - Duration::from_secs(3600)))
        .expect("backdate mtime");
    assert_eq!(eager.sweep_now().unwrap(), 1);
    assert!(!from_the_future.exists());
}

/// PR 8, satellite 5: the sweep recognizes live-entry files. Manifest-referenced WAL
/// segments and live epoch files are in the live set and must never be reclaimed, no
/// matter their age; *unreferenced* staged live files (a crashed compaction's
/// leftovers) are swept once aged — and superseded segments are reclaimed by the
/// epoch commit itself, never by the sweep racing ahead of it.
#[test]
fn sweep_protects_referenced_live_files_and_reclaims_staged_ones() {
    let _guard = serialize();
    let dir = temp_dir("live-sweep");
    let store = Store::create(&dir).unwrap();

    // A committed live entry at epoch 0 (ids + wal referenced by the manifest).
    let ids = p2h_store::LiveIdsSnapshot { epoch: 0, dim: 3, next_id: 0, ids: Vec::new().into() };
    let ids_file = p2h_store::live_ids_file("stream", 0);
    let wal_file = p2h_store::live_wal_file("stream", 0);
    store.save_live_ids(&ids_file, &ids).unwrap();
    let header = p2h_store::WalHeader { epoch: 0, dim: 3, first_id: 0 };
    let mut wal =
        p2h_store::WalWriter::create(&store.live_path(&wal_file).unwrap(), header).unwrap();
    wal.append(&[p2h_store::WalOp::Insert { id: 0, point: vec![1.0, 2.0, 1.0] }]).unwrap();
    drop(wal);
    store
        .commit_live(
            "stream",
            &p2h_store::LiveEntryFiles {
                ids_file: ids_file.clone(),
                base_file: None,
                wal_files: vec![wal_file.clone()],
            },
        )
        .unwrap();

    // Crashed-compaction leftovers: staged epoch-1 files no manifest entry names.
    let staged = [
        dir.join("stream.l1.ids.p2hs"),
        dir.join("stream.l1.base.p2hs"),
        dir.join("stream.l1.wal"),
    ];
    for file in &staged {
        std::fs::write(file, b"crashed compaction").unwrap();
    }

    // Even a zero-grace sweep must leave the referenced epoch-0 files alone while
    // reclaiming the aged staged ones.
    let eager = store.clone().with_sweep_grace(Duration::ZERO);
    assert_eq!(eager.sweep_now().unwrap(), staged.len() as u64);
    for file in &staged {
        assert!(!file.exists(), "unreferenced staged live file must be swept");
    }
    assert!(dir.join(&ids_file).exists(), "referenced id file must survive the sweep");
    assert!(dir.join(&wal_file).exists(), "referenced WAL segment must survive the sweep");

    // The acknowledged write is still replayable after the sweep.
    let replay = p2h_store::replay_wal(&store.live_path(&wal_file).unwrap()).unwrap();
    assert_eq!(replay.ops.len(), 1);

    // A fresh staged WAL inside the grace window survives (the mid-compaction case:
    // the compactor staged epoch 1 but has not committed yet).
    let fresh = dir.join("stream.l1.wal");
    std::fs::write(&fresh, b"mid-compaction").unwrap();
    let patient = store.with_sweep_grace(Duration::from_secs(7200));
    assert_eq!(patient.sweep_now().unwrap(), 0);
    assert!(fresh.exists(), "fresh staged segment inside the grace window must survive");
}
