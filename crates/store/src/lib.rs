//! # p2h-store
//!
//! Persistent index snapshots for the P2HNNS workspace: the expensive offline build
//! (Ball-Tree / BC-Tree construction) is paid once, snapshotted to disk, and restored
//! by serving processes without rebuilding.
//!
//! The crate provides three layers:
//!
//! * a **container format** ([`format`]) — a versioned binary file (magic `P2HS`,
//!   format version, index-kind tag) holding checksummed sections for the point set,
//!   the tree arrays, and build metadata; every malformed input maps to a typed
//!   [`StoreError`], never a panic (see `docs/SNAPSHOT_FORMAT.md` for the byte layout),
//! * the [`Snapshot`] trait — implemented by [`p2h_balltree::BallTree`],
//!   [`p2h_bctree::BcTree`], [`p2h_core::LinearScan`], and the hashing baselines
//!   [`p2h_hash::NhIndex`] / [`p2h_hash::FhIndex`] (their sampled transforms and
//!   projection matrices get their own sections); arrays are stored verbatim, so a
//!   loaded index returns **bit-identical** search results to the original on the
//!   same kernel backend,
//! * a directory-level [`Store`] — named snapshots plus a `MANIFEST` file, which is
//!   what `p2h_engine::IndexRegistry::open_dir` / `Engine::from_store` consume to
//!   cold-start a serving process. Besides single snapshots the manifest can register
//!   **shard groups** ([`Store::save_shard_group`] / [`Store::load_shard_group`]):
//!   one snapshot per shard plus a map file of id mappings, staged under fresh epoch
//!   file names and committed atomically through the manifest rename, so a crash
//!   mid-save never leaves a dangling or half-replaced entry. The `p2h-shard` crate
//!   builds its `ShardedIndex` persistence on this layer. The manifest also registers
//!   **live entries** ([`Store::commit_live`] / [`Store::live_entry`]): the id file,
//!   base snapshot, and CRC-framed WAL segments (module [`wal`]) behind a `p2h-live`
//!   mutable index, advanced epoch-by-epoch through the same atomic manifest rename.
//!
//! ## Quick start
//!
//! ```no_run
//! use p2h_store::{LoadMode, Snapshot, Store};
//! use p2h_balltree::{BallTree, BallTreeBuilder};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! # let points = p2h_core::PointSet::augment(&[vec![0.0, 1.0], vec![2.0, 3.0]])?;
//! // Offline: build once, snapshot to a store directory.
//! let tree = BallTreeBuilder::new(100).build(&points)?;
//! let store = Store::create("indexes")?;
//! store.save("ball", &tree)?;
//!
//! // Serving: restore by name — no rebuild, bit-identical answers.
//! let restored: BallTree = store.load("ball")?;
//!
//! // Zero-copy serving: memory-map the snapshots instead of copying them. The
//! // restored arrays are views into the mapping (format v2 keeps them 8-byte
//! // aligned); answers stay bit-identical and cold start is nearly free.
//! let mapped: BallTree = store.with_mode(LoadMode::Mmap).load("ball")?;
//! assert!(mapped.points().is_mapped());
//! # Ok(()) }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
// All unsafe code of the storage layer lives in the single `mmap` module (the raw
// mmap(2) externs and the checked [u8] → [f32]/[u32] casts); everything else is
// enforced safe.
#![deny(unsafe_code)]

mod crc32;
pub mod format;
mod live;
mod metrics;
#[allow(unsafe_code)]
mod mmap;
pub mod retry;
mod snapshot;
mod store;
pub mod wal;

pub use crc32::crc32;
pub use format::{
    IndexKind, SnapshotSource, StoreError, StoreResult, FORMAT_VERSION, FORMAT_VERSION_V1, MAGIC,
    SECTION_ALIGN,
};
pub use live::{live_base_file, live_ids_file, live_wal_file, LiveIdsSnapshot};
pub use mmap::{LoadMode, MmapRegion};
pub use retry::{retry_interrupted, MAX_EINTR_ATTEMPTS};
pub use snapshot::{snapshot_meta, Snapshot, SnapshotMeta};
pub use store::{
    LiveEntryFiles, LoadedIndex, ShardGroup, ShardGroupMeta, Store, StoreEntry, MANIFEST_FILE,
    SNAPSHOT_EXT, SWEEP_GRACE,
};
pub use wal::{replay_wal, WalHeader, WalOp, WalReplay, WalWriter};
