//! Store support for live (mutable) index entries: the id-file snapshot, durable
//! file staging, and the atomic manifest commit that advances a live entry's epoch.
//!
//! A live entry ties together three kinds of files (see the manifest grammar in
//! [`crate::store`] and the byte-level spec in `docs/SNAPSHOT_FORMAT.md`):
//!
//! * an **id file** `<name>.l<E>.ids.p2hs` — a [`IndexKind::LiveIds`] snapshot
//!   recording the epoch, dimensionality, next unassigned id, and the surviving
//!   global ids of the base snapshot, in base-local order;
//! * an optional **base snapshot** `<name>.l<E>.base.p2hs` — an ordinary index
//!   snapshot holding the compacted points (absent while the entry is empty);
//! * one or more **WAL segments** `<name>.l<E>.wal` — replayed over the base in
//!   manifest order (see [`crate::wal`]). Two segments appear only mid-compaction.
//!
//! The store stays deliberately ignorant of live semantics: it validates, stages,
//! loads, and atomically commits the files, while `p2h-live` owns WAL replay,
//! memtable reconstruction, and compaction. Everything committed here is durable:
//! staged files are fsynced before the rename, and the directory is fsynced after
//! every manifest commit, so a crash immediately after an epoch swap cannot lose it.

use std::fs::{self, File};
use std::io::Write;
use std::path::{Path, PathBuf};

use p2h_core::VecBuf;

use crate::format::{
    io_error, wire, IndexKind, SnapshotReader, SnapshotSource, SnapshotWriter, StoreError,
    StoreResult,
};
use crate::retry::retry_interrupted;
use crate::snapshot::tags;
use crate::store::{
    decode_any_src, validate_file_column, validate_name, LiveEntryFiles, LoadedIndex,
    ManifestEntry, Store, StoreEntry, SNAPSHOT_EXT,
};
use crate::wal::fsync_dir;

/// The id-file payload of a live entry: epoch metadata plus the surviving global ids
/// of the base snapshot, in base-local (reordered) position order.
#[derive(Debug, Clone)]
pub struct LiveIdsSnapshot {
    /// The entry's epoch (monotonically increasing across compactions).
    pub epoch: u64,
    /// Augmented point dimensionality of the entry.
    pub dim: usize,
    /// The next global id the live index will assign (every id in `ids` and every
    /// id logged by committed WAL segments of this epoch is below the ids they
    /// introduce; `ids` here are all `< next_id`).
    pub next_id: u32,
    /// Strictly increasing surviving global ids, one per base snapshot point.
    pub ids: VecBuf<u32>,
}

impl LiveIdsSnapshot {
    /// Serializes the id file into a self-contained snapshot byte buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut writer = SnapshotWriter::new(IndexKind::LiveIds);
        let meta = writer.section(tags::LMET);
        wire::put_u64(meta, self.epoch);
        wire::put_u64(meta, self.dim as u64);
        wire::put_u32(meta, self.next_id);
        wire::put_u64(meta, self.ids.len() as u64);
        wire::put_u32_slice(writer.section(tags::LIDS), &self.ids);
        writer.finish()
    }

    /// Restores an id file from a decode source, with the same hostile-input
    /// hardening as every other snapshot reader: all malformations are typed
    /// [`StoreError`]s, never panics or unbounded allocations.
    pub fn decode_src(src: SnapshotSource<'_>) -> StoreResult<Self> {
        let mut reader = SnapshotReader::new(src.bytes())?;
        let src = src.for_version(reader.version);
        if reader.kind != IndexKind::LiveIds {
            return Err(StoreError::KindMismatch {
                expected: IndexKind::LiveIds,
                found: reader.kind,
            });
        }
        let mut meta = reader.section(tags::LMET)?;
        let epoch = meta.get_u64("LMET epoch")?;
        let dim = meta.get_u64_usize("LMET dim")?;
        let next_id = meta.get_u32("LMET next id")?;
        let count = meta.get_u64_usize("LMET id count")?;
        meta.finish()?;
        if dim < 2 {
            return Err(StoreError::Invalid(p2h_core::Error::InvalidDimension(dim)));
        }
        let mut payload = reader.section(tags::LIDS)?;
        let ids = payload.get_u32_buf(count, src, "LIDS payload")?;
        payload.finish()?;
        reader.finish()?;
        let increasing = ids.windows(2).all(|w| w[0] < w[1]);
        if !increasing || ids.last().is_some_and(|&last| last >= next_id) {
            return Err(StoreError::Invalid(p2h_core::Error::Corrupt(
                "LIDS ids must be strictly increasing and below the next id".into(),
            )));
        }
        Ok(Self { epoch, dim, next_id, ids })
    }

    /// Restores an id file from plain bytes (the copying path).
    pub fn decode(bytes: &[u8]) -> StoreResult<Self> {
        Self::decode_src(SnapshotSource::Bytes(bytes))
    }
}

/// The id file name of epoch `epoch` of live entry `name`.
pub fn live_ids_file(name: &str, epoch: u64) -> String {
    format!("{name}.l{epoch}.ids.{SNAPSHOT_EXT}")
}

/// The base snapshot file name of epoch `epoch` of live entry `name`.
pub fn live_base_file(name: &str, epoch: u64) -> String {
    format!("{name}.l{epoch}.base.{SNAPSHOT_EXT}")
}

/// The WAL segment file name of epoch `epoch` of live entry `name`.
pub fn live_wal_file(name: &str, epoch: u64) -> String {
    format!("{name}.l{epoch}.wal")
}

/// Writes `bytes` to `path` durably: temporary sibling, fsync, atomic rename, then a
/// directory fsync. Unlike the plain snapshot writer this survives power loss — live
/// epoch files must be durable *before* the manifest references them.
fn write_file_durably(path: &Path, bytes: &[u8]) -> StoreResult<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = Path::new(&tmp);
    let mut file =
        retry_interrupted("store.write", || File::create(tmp)).map_err(|e| io_error(tmp, e))?;
    retry_interrupted("store.write", || file.write_all(bytes)).map_err(|e| io_error(tmp, e))?;
    retry_interrupted("store.write", || file.sync_all()).map_err(|e| io_error(tmp, e))?;
    drop(file);
    retry_interrupted("store.write", || fs::rename(tmp, path)).map_err(|e| io_error(path, e))?;
    match path.parent() {
        Some(dir) => fsync_dir(dir),
        None => Ok(()),
    }
}

impl Store {
    /// Looks up a live entry's files by name.
    ///
    /// # Errors
    ///
    /// [`StoreError::MissingEntry`] if the name is absent;
    /// [`StoreError::EntryKind`] if it names a single snapshot or a shard group.
    pub fn live_entry(&self, name: &str) -> StoreResult<LiveEntryFiles> {
        match self.manifest()?.entries.get(name) {
            Some(ManifestEntry::Live { ids_file, base_file, wal_files }) => Ok(LiveEntryFiles {
                ids_file: ids_file.clone(),
                base_file: base_file.clone(),
                wal_files: wal_files.clone(),
            }),
            Some(ManifestEntry::Single(_)) => {
                Err(StoreError::EntryKind { name: name.to_string(), is_group: false })
            }
            Some(ManifestEntry::Group { .. }) => {
                Err(StoreError::EntryKind { name: name.to_string(), is_group: true })
            }
            None => Err(StoreError::MissingEntry(name.to_string())),
        }
    }

    /// Atomically points the manifest entry `name` at `files`, creating or replacing
    /// it, then deletes files of the replaced entry that the new one no longer
    /// references (best-effort — this is what reclaims superseded WAL segments and
    /// epoch files *after* the commit, never before).
    ///
    /// The manifest rename is the commit point: a crash before it leaves the old
    /// epoch fully intact, a crash after it leaves the new one. The store directory
    /// is fsynced after the rename so the commit itself is durable.
    pub fn commit_live(&self, name: &str, files: &LiveEntryFiles) -> StoreResult<()> {
        validate_name(name)?;
        validate_file_column(&files.ids_file, 0)?;
        if let Some(base) = &files.base_file {
            validate_file_column(base, 0)?;
        }
        if files.wal_files.is_empty() {
            return Err(StoreError::Manifest {
                line: 0,
                message: format!("live entry `{name}` must reference at least one WAL segment"),
            });
        }
        for wal in &files.wal_files {
            validate_file_column(wal, 0)?;
        }
        let entry = ManifestEntry::Live {
            ids_file: files.ids_file.clone(),
            base_file: files.base_file.clone(),
            wal_files: files.wal_files.clone(),
        };
        let mut manifest = self.manifest()?;
        let replaced = manifest.entries.insert(name.to_string(), entry.clone());
        self.commit_manifest(&manifest)?;
        fsync_dir(self.dir())?;
        self.remove_superseded_files(replaced.as_ref(), &entry);
        Ok(())
    }

    /// Removes a live entry from the manifest and deletes its files (best-effort,
    /// after the commit).
    ///
    /// # Errors
    ///
    /// Same lookup errors as [`Store::live_entry`].
    pub fn remove_live(&self, name: &str) -> StoreResult<()> {
        let mut manifest = self.manifest()?;
        match manifest.entries.get(name) {
            Some(ManifestEntry::Live { .. }) => {}
            Some(ManifestEntry::Single(_)) => {
                return Err(StoreError::EntryKind { name: name.to_string(), is_group: false });
            }
            Some(ManifestEntry::Group { .. }) => {
                return Err(StoreError::EntryKind { name: name.to_string(), is_group: true });
            }
            None => return Err(StoreError::MissingEntry(name.to_string())),
        }
        let removed = manifest.entries.remove(name).expect("checked above");
        self.commit_manifest(&manifest)?;
        fsync_dir(self.dir())?;
        for file in removed.files() {
            let _ = fs::remove_file(self.dir().join(file));
        }
        Ok(())
    }

    /// Durably stages a live id file under `file` (fsynced before the rename; not
    /// yet referenced by the manifest until [`Store::commit_live`]).
    pub fn save_live_ids(&self, file: &str, snapshot: &LiveIdsSnapshot) -> StoreResult<()> {
        validate_file_column(file, 0)?;
        write_file_durably(&self.dir().join(file), &snapshot.encode())
    }

    /// Loads and validates a live id file under this handle's load mode.
    pub fn load_live_ids(&self, file: &str) -> StoreResult<LiveIdsSnapshot> {
        validate_file_column(file, 0)?;
        let owner = self.read_owner(file)?;
        LiveIdsSnapshot::decode_src(owner.as_src())
    }

    /// Durably stages an encoded index snapshot under `file` — the base snapshot of
    /// a live epoch, produced by compaction and committed later via
    /// [`Store::commit_live`].
    pub fn save_live_snapshot(&self, file: &str, bytes: &[u8]) -> StoreResult<()> {
        validate_file_column(file, 0)?;
        write_file_durably(&self.dir().join(file), bytes)
    }

    /// Loads a live entry's base snapshot as whichever index kind it holds, under
    /// this handle's load mode (zero-copy when the store was opened with
    /// [`crate::LoadMode::Mmap`]).
    pub fn load_live_base(&self, file: &str) -> StoreResult<LoadedIndex> {
        validate_file_column(file, 0)?;
        crate::metrics::timed_decode(|| {
            let owner = self.read_owner(file)?;
            decode_any_src(owner.as_src())
        })
    }

    /// The absolute path of a live entry file (after validating it obeys the
    /// manifest file-name rules — no traversal, no hidden files). `p2h-live` uses
    /// this to open WAL segments, which the store does not parse itself.
    pub fn live_path(&self, file: &str) -> StoreResult<PathBuf> {
        validate_file_column(file, 0)?;
        Ok(self.dir().join(file))
    }

    /// Lists the live entries in the store, sorted by name.
    pub fn live_entries(&self) -> StoreResult<Vec<String>> {
        Ok(self
            .load_entries()?
            .into_iter()
            .filter_map(|(name, entry)| matches!(entry, StoreEntry::Live(_)).then_some(name))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("p2h-live-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_ids(epoch: u64) -> LiveIdsSnapshot {
        LiveIdsSnapshot { epoch, dim: 4, next_id: 10, ids: vec![0u32, 2, 3, 7].into() }
    }

    #[test]
    fn ids_snapshot_round_trip() {
        let snap = sample_ids(3);
        let decoded = LiveIdsSnapshot::decode(&snap.encode()).unwrap();
        assert_eq!(decoded.epoch, 3);
        assert_eq!(decoded.dim, 4);
        assert_eq!(decoded.next_id, 10);
        assert_eq!(&*decoded.ids, &[0, 2, 3, 7]);
    }

    #[test]
    fn ids_snapshot_rejects_disorder_and_overflowing_ids() {
        let mut snap = sample_ids(0);
        snap.ids = vec![0u32, 2, 2].into();
        assert!(matches!(LiveIdsSnapshot::decode(&snap.encode()), Err(StoreError::Invalid(_))));
        let mut snap = sample_ids(0);
        snap.ids = vec![0u32, 11].into(); // 11 ≥ next_id of 10
        assert!(matches!(LiveIdsSnapshot::decode(&snap.encode()), Err(StoreError::Invalid(_))));
    }

    #[test]
    fn ids_snapshot_hostile_truncation_is_typed() {
        let bytes = sample_ids(1).encode();
        for cut in 0..bytes.len() {
            assert!(LiveIdsSnapshot::decode(&bytes[..cut]).is_err(), "cut {cut} decoded");
        }
    }

    #[test]
    fn commit_and_reopen_live_entry() {
        let dir = temp_store("commit");
        let store = Store::create(&dir).unwrap();
        store.save_live_ids("idx.l0.ids.p2hs", &sample_ids(0)).unwrap();
        let files = LiveEntryFiles {
            ids_file: "idx.l0.ids.p2hs".into(),
            base_file: None,
            wal_files: vec!["idx.l0.wal".into()],
        };
        store.commit_live("idx", &files).unwrap();
        assert_eq!(store.live_entry("idx").unwrap(), files);
        assert_eq!(store.live_entries().unwrap(), vec!["idx".to_string()]);
        let loaded = store.load_live_ids("idx.l0.ids.p2hs").unwrap();
        assert_eq!(loaded.next_id, 10);

        // Reopen: the manifest round-trips the live line.
        let reopened = Store::open(&dir).unwrap();
        assert_eq!(reopened.live_entry("idx").unwrap(), files);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn commit_live_reclaims_superseded_files_only_after_commit() {
        let dir = temp_store("reclaim");
        let store = Store::create(&dir).unwrap();
        store.save_live_ids("idx.l0.ids.p2hs", &sample_ids(0)).unwrap();
        fs::write(dir.join("idx.l0.wal"), b"x").unwrap();
        store
            .commit_live(
                "idx",
                &LiveEntryFiles {
                    ids_file: "idx.l0.ids.p2hs".into(),
                    base_file: None,
                    wal_files: vec!["idx.l0.wal".into()],
                },
            )
            .unwrap();

        // Epoch swap to l1: the l0 files must survive until this commit, then go.
        store.save_live_ids("idx.l1.ids.p2hs", &sample_ids(1)).unwrap();
        fs::write(dir.join("idx.l1.wal"), b"y").unwrap();
        assert!(dir.join("idx.l0.ids.p2hs").exists());
        store
            .commit_live(
                "idx",
                &LiveEntryFiles {
                    ids_file: "idx.l1.ids.p2hs".into(),
                    base_file: None,
                    wal_files: vec!["idx.l1.wal".into()],
                },
            )
            .unwrap();
        assert!(!dir.join("idx.l0.ids.p2hs").exists());
        assert!(!dir.join("idx.l0.wal").exists());
        assert!(dir.join("idx.l1.ids.p2hs").exists());
        assert!(dir.join("idx.l1.wal").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn commit_live_validates_inputs() {
        let dir = temp_store("validate");
        let store = Store::create(&dir).unwrap();
        let bad_wal = LiveEntryFiles {
            ids_file: "idx.l0.ids.p2hs".into(),
            base_file: None,
            wal_files: vec![],
        };
        assert!(matches!(store.commit_live("idx", &bad_wal), Err(StoreError::Manifest { .. })));
        let traversal = LiveEntryFiles {
            ids_file: "../evil.p2hs".into(),
            base_file: None,
            wal_files: vec!["idx.l0.wal".into()],
        };
        assert!(matches!(store.commit_live("idx", &traversal), Err(StoreError::Manifest { .. })));
        assert!(store.live_path("../evil.wal").is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn remove_live_deletes_entry_and_files() {
        let dir = temp_store("remove");
        let store = Store::create(&dir).unwrap();
        store.save_live_ids("idx.l0.ids.p2hs", &sample_ids(0)).unwrap();
        fs::write(dir.join("idx.l0.wal"), b"x").unwrap();
        store
            .commit_live(
                "idx",
                &LiveEntryFiles {
                    ids_file: "idx.l0.ids.p2hs".into(),
                    base_file: None,
                    wal_files: vec!["idx.l0.wal".into()],
                },
            )
            .unwrap();
        store.remove_live("idx").unwrap();
        assert!(matches!(store.live_entry("idx"), Err(StoreError::MissingEntry(_))));
        assert!(!dir.join("idx.l0.ids.p2hs").exists());
        assert!(!dir.join("idx.l0.wal").exists());
        let _ = fs::remove_dir_all(&dir);
    }
}
