//! Store-side observability: snapshot load stage timings, byte counters, and sweep
//! telemetry, published to the process-wide [`p2h_obs`] registry.
//!
//! A snapshot load has three stages with very different cost profiles:
//!
//! * **read** — materializing file bytes (`std::fs::read` under [`LoadMode::Copy`],
//!   `mmap(2)` under [`LoadMode::Mmap`]);
//! * **crc** — the per-section checksum pass (the one full walk over the payload that
//!   both load modes share);
//! * **decode** — everything else: header validation, array reconstruction (copying
//!   or zero-copy view setup), and structural checks.
//!
//! The split is what makes the copy-vs-mmap trade-off visible in the exposition dump:
//! under mmap the read stage collapses to the syscall and decode to view setup, while
//! the CRC pass stays — exactly the "cold start cost drops to one checksum pass" claim
//! the zero-copy loader makes.
//!
//! Stage attribution works with thread-local accumulators rather than plumbing a
//! context through every decode function: the read and CRC paths note their own
//! nanoseconds as they happen, and [`timed_decode`] wraps a whole load entry point,
//! attributing `elapsed − read − crc − nested-decode` to the decode stage. The
//! nested-decode term makes the wrapper re-entrant, so coarse wrappers (e.g.
//! `load_entries`) can nest finer ones (`load_group_files`) without double counting.

use std::cell::Cell;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use p2h_obs::Counter;

use crate::mmap::LoadMode;

/// Cached handles into the global metrics registry (one lookup per process).
pub(crate) struct StoreMetrics {
    read_ns: Arc<Counter>,
    crc_ns: Arc<Counter>,
    decode_ns: Arc<Counter>,
    crc_bytes: Arc<Counter>,
    loads_copy: Arc<Counter>,
    loads_mmap: Arc<Counter>,
    bytes_copy: Arc<Counter>,
    bytes_mmap: Arc<Counter>,
    sweeps: Arc<Counter>,
    swept_files: Arc<Counter>,
    sweep_future_skips: Arc<Counter>,
    eintr_retries: Arc<Counter>,
}

fn store_metrics() -> &'static StoreMetrics {
    static METRICS: OnceLock<StoreMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = p2h_obs::global();
        let stage = |label| {
            reg.counter(
                "p2h_store_load_stage_ns_total",
                "Nanoseconds spent in each snapshot load stage (read, crc, decode).",
                &[("stage", label)],
            )
        };
        let loads = |label| {
            reg.counter(
                "p2h_store_loads_total",
                "Snapshot files materialized, by load mode.",
                &[("mode", label)],
            )
        };
        let bytes = |label| {
            reg.counter(
                "p2h_store_load_bytes_total",
                "Snapshot bytes materialized: owned heap copies (mode=\"copy\") vs. \
                 zero-copy mappings (mode=\"mmap\").",
                &[("mode", label)],
            )
        };
        StoreMetrics {
            read_ns: stage("read"),
            crc_ns: stage("crc"),
            decode_ns: stage("decode"),
            crc_bytes: reg.counter(
                "p2h_store_crc_bytes_total",
                "Payload bytes checksummed while reading snapshot sections.",
                &[],
            ),
            loads_copy: loads("copy"),
            loads_mmap: loads("mmap"),
            bytes_copy: bytes("copy"),
            bytes_mmap: bytes("mmap"),
            sweeps: reg.counter(
                "p2h_store_sweeps_total",
                "Stale-file sweeps performed on store open.",
                &[],
            ),
            swept_files: reg.counter(
                "p2h_store_swept_files_total",
                "Crash-leftover files deleted by stale-file sweeps.",
                &[],
            ),
            sweep_future_skips: reg.counter(
                "p2h_store_sweep_future_skips_total",
                "Sweep candidates skipped because their mtime is in the future \
                 (clock skew or a restored backup — not provably stale).",
                &[],
            ),
            eintr_retries: reg.counter(
                "p2h_store_eintr_retries_total",
                "Interrupted (EINTR) syscalls transparently reissued by the store's \
                 I/O retry loops.",
                &[],
            ),
        }
    })
}

thread_local! {
    /// Read-stage nanoseconds noted on this thread (used by [`timed_decode`] to
    /// subtract file I/O that happens inside a wrapped load).
    static READ_NS: Cell<u64> = const { Cell::new(0) };
    /// CRC-stage nanoseconds noted on this thread.
    static CRC_NS: Cell<u64> = const { Cell::new(0) };
    /// Decode-stage nanoseconds already attributed by nested [`timed_decode`] calls.
    static DECODE_NS: Cell<u64> = const { Cell::new(0) };
}

/// Records one file materialization: `ns` in the read stage plus per-mode load and
/// byte counters. `mode` is the mode actually used (after any big-endian demotion).
pub(crate) fn record_read(mode: LoadMode, ns: u64, bytes: usize) {
    READ_NS.with(|c| c.set(c.get().saturating_add(ns)));
    let m = store_metrics();
    m.read_ns.add(ns);
    match mode {
        LoadMode::Copy => {
            m.loads_copy.inc();
            m.bytes_copy.add(bytes as u64);
        }
        LoadMode::Mmap => {
            m.loads_mmap.inc();
            m.bytes_mmap.add(bytes as u64);
        }
    }
}

/// Records one section checksum pass: `ns` in the CRC stage, `bytes` checksummed.
pub(crate) fn record_crc(ns: u64, bytes: usize) {
    CRC_NS.with(|c| c.set(c.get().saturating_add(ns)));
    let m = store_metrics();
    m.crc_ns.add(ns);
    m.crc_bytes.add(bytes as u64);
}

/// Runs `f` (a snapshot load entry point), attributing its wall time minus the read,
/// CRC, and already-attributed nested decode nanoseconds to the decode stage.
/// Re-entrant: nesting wrapped loads never double-counts.
pub(crate) fn timed_decode<T>(f: impl FnOnce() -> T) -> T {
    let read0 = READ_NS.with(Cell::get);
    let crc0 = CRC_NS.with(Cell::get);
    let decode0 = DECODE_NS.with(Cell::get);
    let start = Instant::now();
    let out = f();
    let elapsed = start.elapsed().as_nanos() as u64;
    let read_d = READ_NS.with(Cell::get).saturating_sub(read0);
    let crc_d = CRC_NS.with(Cell::get).saturating_sub(crc0);
    let decode_d = DECODE_NS.with(Cell::get).saturating_sub(decode0);
    let own = elapsed.saturating_sub(read_d).saturating_sub(crc_d).saturating_sub(decode_d);
    DECODE_NS.with(|c| c.set(c.get().saturating_add(own)));
    store_metrics().decode_ns.add(own);
    out
}

/// Records one stale-file sweep deleting `swept` files and skipping `future_skipped`
/// candidates whose mtime lies in the future.
pub(crate) fn record_sweep(swept: u64, future_skipped: u64) {
    let m = store_metrics();
    m.sweeps.inc();
    m.swept_files.add(swept);
    m.sweep_future_skips.add(future_skipped);
}

/// Records one EINTR-interrupted syscall that the retry loop reissued.
pub(crate) fn record_eintr_retry() {
    store_metrics().eintr_retries.inc();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_attribution_is_reentrant_and_splits_read_crc_decode() {
        let m = store_metrics();
        let read0 = m.read_ns.value();
        let crc0 = m.crc_ns.value();
        let decode0 = m.decode_ns.value();

        // Outer load wraps an inner load; the inner one notes read + CRC work.
        timed_decode(|| {
            timed_decode(|| {
                record_read(LoadMode::Copy, 1_000, 64);
                record_crc(500, 64);
                std::hint::black_box(0u64)
            });
        });

        assert_eq!(m.read_ns.value() - read0, 1_000);
        assert_eq!(m.crc_ns.value() - crc0, 500);
        // Decode time excludes the noted read/CRC ns; the nested wrapper's share is
        // subtracted from the outer one, so the total stays below wall time even
        // though two wrappers observed the same interval.
        let decode_d = m.decode_ns.value() - decode0;
        assert!(decode_d < 1_500, "decode stage must exclude noted read/crc ns");
    }

    #[test]
    fn sweep_and_byte_counters_accumulate() {
        let m = store_metrics();
        let sweeps0 = m.sweeps.value();
        let swept0 = m.swept_files.value();
        let mmap_bytes0 = m.bytes_mmap.value();
        record_sweep(3, 0);
        record_read(LoadMode::Mmap, 10, 4096);
        assert_eq!(m.sweeps.value() - sweeps0, 1);
        assert_eq!(m.swept_files.value() - swept0, 3);
        assert_eq!(m.bytes_mmap.value() - mmap_bytes0, 4096);
    }
}
