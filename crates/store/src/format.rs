//! The versioned snapshot container format: header, checksummed sections, and the
//! typed errors every malformed input maps to.
//!
//! A snapshot is a single file (see `docs/SNAPSHOT_FORMAT.md` for the byte-level spec).
//! The current container is **format version 2**:
//!
//! ```text
//! header   magic "P2HS" · format version u16 · index-kind tag u8 · reserved u8
//!          · section count u32 · reserved u32 (zero)             (16 bytes)
//! section  tag [4 ASCII bytes] · payload length u64 · CRC32 u32  (16 bytes)
//!          · payload · zero padding to the next 8-byte boundary
//! …        (sections repeat; nothing may follow the last one)
//! ```
//!
//! Because the v2 header is 16 bytes, section headers are 16 bytes, and every payload
//! is padded to a multiple of 8, **every section payload starts on an 8-byte boundary
//! of the file**. That is the property the zero-copy loader relies on: a memory-mapped
//! snapshot can serve its `f32`/`u32` arrays as typed slices directly (mmap bases are
//! page-aligned, so file alignment is absolute alignment). Format version 1 (12-byte
//! header, no padding) is still read — via the copying path only.
//!
//! All integers are little-endian. Every section payload is covered by its CRC32, so a
//! flipped bit anywhere in the tree arrays is caught at load time instead of silently
//! corrupting search results. The reader is hardened against hostile input: truncation,
//! bad magic, unknown versions or kinds, checksum mismatches, misaligned/nonzero
//! padding, and `dim × count` size overflows all return a typed [`StoreError`] — never
//! a panic, never an unbounded allocation (payload reads are bounded by the actual file
//! size before any `Vec` is reserved), and never an unaligned typed cast.

use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use p2h_core::{BufBacking, Scalar, VecBuf};

use crate::crc32::crc32;
use crate::mmap::MmapRegion;

/// Magic bytes opening every snapshot file.
pub const MAGIC: [u8; 4] = *b"P2HS";

/// The current container format version (aligned sections, zero-copy loadable).
pub const FORMAT_VERSION: u16 = 2;

/// The legacy container version (unaligned; still readable via the copying path).
pub const FORMAT_VERSION_V1: u16 = 1;

/// Byte length of the current (v2) file header.
pub const HEADER_LEN: usize = 16;

/// Byte length of the legacy (v1) file header.
pub const HEADER_LEN_V1: usize = 12;

/// Byte length of a section header (both versions).
pub const SECTION_HEADER_LEN: usize = 16;

/// Alignment every v2 section payload is padded to.
pub const SECTION_ALIGN: usize = 8;

/// Which index type a snapshot holds, stored as a one-byte tag in the header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IndexKind {
    /// [`p2h_core::LinearScan`] — raw points only.
    LinearScan,
    /// [`p2h_balltree::BallTree`].
    BallTree,
    /// [`p2h_bctree::BcTree`].
    BcTree,
    /// [`p2h_hash::NhIndex`] — transform + norm-aligned projection tables.
    Nh,
    /// [`p2h_hash::FhIndex`] — transform + norm-partitioned projection tables.
    Fh,
    /// A shard-group map file: the id mappings and metadata tying the per-shard
    /// snapshots of one sharded index together. Not a standalone index — it is loaded
    /// through the shard-group path, never through `load`/`load_any`.
    ShardMap,
    /// A live-entry id file: the surviving global ids and epoch metadata of one
    /// `p2h-live` mutable index's base snapshot. Not a standalone index — it is loaded
    /// through the live-entry path, never through `load`/`load_any`.
    LiveIds,
}

impl IndexKind {
    /// The on-disk tag byte.
    pub fn tag(self) -> u8 {
        match self {
            IndexKind::LinearScan => 0,
            IndexKind::BallTree => 1,
            IndexKind::BcTree => 2,
            IndexKind::Nh => 3,
            IndexKind::Fh => 4,
            IndexKind::ShardMap => 5,
            IndexKind::LiveIds => 6,
        }
    }

    /// Decodes a tag byte.
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(IndexKind::LinearScan),
            1 => Some(IndexKind::BallTree),
            2 => Some(IndexKind::BcTree),
            3 => Some(IndexKind::Nh),
            4 => Some(IndexKind::Fh),
            5 => Some(IndexKind::ShardMap),
            6 => Some(IndexKind::LiveIds),
            _ => None,
        }
    }

    /// Human-readable label (matches the index's `P2hIndex::name` flavor).
    pub fn label(self) -> &'static str {
        match self {
            IndexKind::LinearScan => "linear-scan",
            IndexKind::BallTree => "ball-tree",
            IndexKind::BcTree => "bc-tree",
            IndexKind::Nh => "nh",
            IndexKind::Fh => "fh",
            IndexKind::ShardMap => "shard-map",
            IndexKind::LiveIds => "live-ids",
        }
    }
}

impl fmt::Display for IndexKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Everything that can go wrong while writing, reading, or resolving snapshots.
///
/// Each malformed-input case gets its own variant so callers (and tests) can assert the
/// precise failure mode; [`StoreError::Io`] is reserved for operating-system failures.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum StoreError {
    /// An operating-system I/O failure (missing file, permissions, disk full, …).
    Io {
        /// The path involved, when known.
        path: Option<PathBuf>,
        /// The OS error message.
        message: String,
    },
    /// The file does not start with the snapshot magic bytes.
    BadMagic {
        /// The four bytes actually found.
        found: [u8; 4],
    },
    /// The file declares a container version this build cannot read.
    UnsupportedVersion {
        /// Version found in the header.
        found: u16,
        /// Version this build supports.
        supported: u16,
    },
    /// The header's index-kind tag is not a known kind.
    UnknownKind(u8),
    /// The snapshot holds a different index kind than the caller asked for.
    KindMismatch {
        /// Kind the caller expected.
        expected: IndexKind,
        /// Kind found in the header.
        found: IndexKind,
    },
    /// The input ended before a declared structure was complete.
    Truncated {
        /// What was being decoded when the bytes ran out.
        context: &'static str,
    },
    /// A section appeared with a different tag than the format mandates next.
    SectionTagMismatch {
        /// Tag the format expects at this position.
        expected: [u8; 4],
        /// Tag actually found.
        found: [u8; 4],
    },
    /// A section payload failed its CRC32 check.
    ChecksumMismatch {
        /// Tag of the failing section.
        section: [u8; 4],
        /// Checksum stored in the section header.
        stored: u32,
        /// Checksum computed over the payload.
        computed: u32,
    },
    /// A declared size (`dim × count`, payload bytes, …) overflows the platform.
    Overflow {
        /// The computation that overflowed.
        context: &'static str,
    },
    /// A section's payload length disagrees with the lengths declared in `META`.
    SectionLength {
        /// Tag of the offending section.
        section: [u8; 4],
        /// Byte length the metadata implies.
        expected: u64,
        /// Byte length found in the section header.
        found: u64,
    },
    /// Bytes remained after the declared sections were consumed.
    TrailingBytes {
        /// Number of unconsumed bytes.
        count: usize,
    },
    /// A v2 section violates the 8-byte alignment rules: nonzero padding bytes, or an
    /// array that would require an unaligned typed view. The loader refuses rather
    /// than perform an unaligned cast.
    Misaligned {
        /// Tag of the offending section.
        section: [u8; 4],
        /// Absolute byte offset of the violation.
        offset: usize,
    },
    /// The decoded arrays failed the index's structural validation (see
    /// [`p2h_balltree::validate_structure`]), or a `PointSet` could not be formed.
    Invalid(p2h_core::Error),
    /// The store `MANIFEST` file is malformed.
    Manifest {
        /// 1-based line number of the offending line (0 for file-level problems).
        line: usize,
        /// What is wrong with it.
        message: String,
    },
    /// An index name is not registered in the store manifest.
    MissingEntry(String),
    /// An index name is not usable as a snapshot file stem.
    InvalidName(String),
    /// The snapshot holds a non-index kind (a shard map) where a standalone index was
    /// expected; shard groups load through `Store::load_shard_group`.
    NotAnIndex(IndexKind),
    /// The manifest entry is a shard group, not a single snapshot (or vice versa).
    EntryKind {
        /// Name of the entry.
        name: String,
        /// What the entry actually is.
        is_group: bool,
    },
    /// The shard-group files are mutually inconsistent (counts, dimensions, or the
    /// global id mapping disagree across the map file and the per-shard snapshots).
    GroupInconsistent {
        /// What disagrees.
        message: String,
    },
    /// A write-ahead-log segment is corrupt beyond the torn-tail rule: a frame in the
    /// middle of the segment fails its CRC, declares an impossible length, or replays
    /// an operation no valid writer history could have appended.
    WalCorrupt {
        /// What is wrong with the segment.
        message: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path: Some(path), message } => {
                write!(f, "I/O error on {}: {message}", path.display())
            }
            StoreError::Io { path: None, message } => write!(f, "I/O error: {message}"),
            StoreError::BadMagic { found } => {
                write!(f, "bad magic {found:?}: not a P2HS snapshot")
            }
            StoreError::UnsupportedVersion { found, supported } => {
                write!(f, "unsupported snapshot version {found} (this build reads {supported})")
            }
            StoreError::UnknownKind(tag) => write!(f, "unknown index-kind tag {tag}"),
            StoreError::KindMismatch { expected, found } => {
                write!(f, "snapshot holds a {found} index, expected {expected}")
            }
            StoreError::Truncated { context } => write!(f, "truncated snapshot: {context}"),
            StoreError::SectionTagMismatch { expected, found } => write!(
                f,
                "expected section `{}`, found `{}`",
                String::from_utf8_lossy(expected),
                String::from_utf8_lossy(found)
            ),
            StoreError::ChecksumMismatch { section, stored, computed } => write!(
                f,
                "checksum mismatch in section `{}`: stored {stored:#010x}, computed {computed:#010x}",
                String::from_utf8_lossy(section)
            ),
            StoreError::Overflow { context } => write!(f, "size overflow: {context}"),
            StoreError::SectionLength { section, expected, found } => write!(
                f,
                "section `{}` holds {found} bytes, metadata implies {expected}",
                String::from_utf8_lossy(section)
            ),
            StoreError::TrailingBytes { count } => {
                write!(f, "{count} trailing bytes after the last section")
            }
            StoreError::Misaligned { section, offset } => write!(
                f,
                "section `{}` violates the 8-byte alignment rules at offset {offset}",
                String::from_utf8_lossy(section)
            ),
            StoreError::Invalid(err) => write!(f, "invalid index data: {err}"),
            StoreError::Manifest { line, message } => {
                write!(f, "malformed MANIFEST (line {line}): {message}")
            }
            StoreError::MissingEntry(name) => {
                write!(f, "no index named `{name}` in the store manifest")
            }
            StoreError::InvalidName(name) => write!(
                f,
                "invalid index name `{name}`: use 1-100 chars of [A-Za-z0-9._-], not starting with `.`"
            ),
            StoreError::NotAnIndex(kind) => {
                write!(f, "snapshot holds a `{kind}` payload, which is not a standalone index")
            }
            StoreError::EntryKind { name, is_group } => {
                if *is_group {
                    write!(f, "`{name}` is a shard group; load it through the shard-group API")
                } else {
                    write!(f, "`{name}` is a single snapshot, not a shard group")
                }
            }
            StoreError::GroupInconsistent { message } => {
                write!(f, "inconsistent shard group: {message}")
            }
            StoreError::WalCorrupt { message } => {
                write!(f, "corrupt WAL segment: {message}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<p2h_core::Error> for StoreError {
    fn from(err: p2h_core::Error) -> Self {
        StoreError::Invalid(err)
    }
}

/// Convenience result alias for store operations.
pub type StoreResult<T> = Result<T, StoreError>;

/// Wraps an OS error with the path it occurred on.
pub(crate) fn io_error(path: &Path, err: std::io::Error) -> StoreError {
    StoreError::Io { path: Some(path.to_path_buf()), message: err.to_string() }
}

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

/// Assembles a snapshot byte buffer: fixed header followed by checksummed sections.
///
/// Writes the current format (v2: 16-byte header, payloads zero-padded to 8 bytes so
/// every payload starts 8-aligned). [`SnapshotWriter::with_version`] can produce a
/// legacy v1 container for compatibility tooling and tests.
#[derive(Debug)]
pub struct SnapshotWriter {
    kind: IndexKind,
    version: u16,
    sections: Vec<([u8; 4], Vec<u8>)>,
}

impl SnapshotWriter {
    /// Starts a snapshot of the given kind in the current format version.
    pub fn new(kind: IndexKind) -> Self {
        Self::with_version(kind, FORMAT_VERSION)
    }

    /// Starts a snapshot in an explicit container version (v1 or v2). Section payload
    /// *contents* are the caller's responsibility — index kinds whose payload layout
    /// changed between versions (the projection tables) must write the matching one.
    ///
    /// # Panics
    ///
    /// Panics if `version` is not a known container version.
    pub fn with_version(kind: IndexKind, version: u16) -> Self {
        assert!(
            version == FORMAT_VERSION || version == FORMAT_VERSION_V1,
            "unknown container version {version}"
        );
        Self { kind, version, sections: Vec::new() }
    }

    /// Opens a new section and returns its payload buffer to append into. The length
    /// and CRC32 are computed when the snapshot is finished.
    pub fn section(&mut self, tag: [u8; 4]) -> &mut Vec<u8> {
        self.sections.push((tag, Vec::new()));
        &mut self.sections.last_mut().expect("section just pushed").1
    }

    /// Serializes the header and all sections into the final byte buffer.
    pub fn finish(self) -> Vec<u8> {
        let payload_total: usize = self.sections.iter().map(|(_, p)| p.len()).sum();
        let mut out = Vec::with_capacity(
            HEADER_LEN + self.sections.len() * (SECTION_HEADER_LEN + SECTION_ALIGN) + payload_total,
        );
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&self.version.to_le_bytes());
        out.push(self.kind.tag());
        out.push(0); // reserved
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        if self.version >= 2 {
            out.extend_from_slice(&[0u8; 4]); // reserved; pads the header to 16 bytes
        }
        for (tag, payload) in &self.sections {
            out.extend_from_slice(tag);
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(&crc32(payload).to_le_bytes());
            out.extend_from_slice(payload);
            if self.version >= 2 {
                // Zero padding keeps the next section header (and therefore the next
                // payload) on an 8-byte boundary; the CRC covers the payload only.
                let pad = out.len().next_multiple_of(SECTION_ALIGN) - out.len();
                out.extend(std::iter::repeat_n(0u8, pad));
            }
        }
        out
    }
}

/// Little-endian append helpers for section payloads.
pub mod wire {
    use super::Scalar;

    /// Appends a `u32`.
    pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
        buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`.
    pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
        buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f32`.
    pub fn put_f32(buf: &mut Vec<u8>, v: Scalar) {
        buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a whole scalar slice.
    pub fn put_f32_slice(buf: &mut Vec<u8>, values: &[Scalar]) {
        buf.reserve(values.len() * 4);
        for &v in values {
            buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Appends a whole `u32` slice.
    pub fn put_u32_slice(buf: &mut Vec<u8>, values: &[u32]) {
        buf.reserve(values.len() * 4);
        for &v in values {
            buf.extend_from_slice(&v.to_le_bytes());
        }
    }
}

// ---------------------------------------------------------------------------
// Reading
// ---------------------------------------------------------------------------

/// The bytes a snapshot is decoded from: either a plain in-memory buffer (the copying
/// loader) or a shared memory-mapped region (the zero-copy loader). Cheap to copy;
/// decoding never clones the underlying bytes.
#[derive(Debug, Clone, Copy)]
pub enum SnapshotSource<'a> {
    /// Decode by copying every array out of this buffer.
    Bytes(&'a [u8]),
    /// Decode zero-copy: arrays become [`VecBuf`] windows into the mapped region
    /// (requires a v2 container; v1 inputs silently demote to the copying path).
    Mapped(&'a Arc<MmapRegion>),
}

impl<'a> SnapshotSource<'a> {
    /// The raw snapshot bytes.
    pub fn bytes(&self) -> &'a [u8] {
        match self {
            SnapshotSource::Bytes(bytes) => bytes,
            SnapshotSource::Mapped(region) => region.as_bytes(),
        }
    }

    /// Demotes a mapped source to the copying path for container versions that cannot
    /// guarantee payload alignment (v1). Bit-identical either way — only the backing
    /// of the restored arrays differs.
    pub(crate) fn for_version(self, version: u16) -> Self {
        match self {
            SnapshotSource::Mapped(_) if version < 2 => SnapshotSource::Bytes(self.bytes()),
            other => other,
        }
    }
}

/// Parses the header of a snapshot buffer and walks its sections in order.
///
/// Reads both container versions: v2 (the current, aligned format) and the legacy v1.
/// For v2, the reader consumes and verifies the zero padding after every payload, so a
/// well-formed stream keeps every payload 8-aligned; crafted nonzero padding is a
/// typed [`StoreError::Misaligned`].
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    buf: &'a [u8],
    pos: usize,
    sections_left: u32,
    /// Index kind declared in the header.
    pub kind: IndexKind,
    /// Container version declared in the header ([`FORMAT_VERSION`] or
    /// [`FORMAT_VERSION_V1`]).
    pub version: u16,
}

impl<'a> SnapshotReader<'a> {
    /// Parses the fixed header. Fails on short input, wrong magic, an unsupported
    /// version, or an unknown kind tag.
    pub fn new(buf: &'a [u8]) -> StoreResult<Self> {
        if buf.len() < HEADER_LEN_V1 {
            return Err(StoreError::Truncated { context: "file header" });
        }
        let mut magic = [0u8; 4];
        magic.copy_from_slice(&buf[0..4]);
        if magic != MAGIC {
            return Err(StoreError::BadMagic { found: magic });
        }
        let version = u16::from_le_bytes([buf[4], buf[5]]);
        if version != FORMAT_VERSION && version != FORMAT_VERSION_V1 {
            return Err(StoreError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let header_len = if version >= 2 { HEADER_LEN } else { HEADER_LEN_V1 };
        if buf.len() < header_len {
            return Err(StoreError::Truncated { context: "file header" });
        }
        let kind = IndexKind::from_tag(buf[6]).ok_or(StoreError::UnknownKind(buf[6]))?;
        let sections_left = u32::from_le_bytes([buf[8], buf[9], buf[10], buf[11]]);
        Ok(Self { buf, pos: header_len, sections_left, kind, version })
    }

    /// Reads the next section, which must carry `tag`, verifying its checksum (and,
    /// for v2, consuming and verifying the payload's zero padding).
    pub fn section(&mut self, tag: [u8; 4]) -> StoreResult<Payload<'a>> {
        if self.sections_left == 0 {
            return Err(StoreError::Truncated { context: "section count exhausted" });
        }
        if self.buf.len() - self.pos < SECTION_HEADER_LEN {
            return Err(StoreError::Truncated { context: "section header" });
        }
        let header = &self.buf[self.pos..self.pos + SECTION_HEADER_LEN];
        let mut found = [0u8; 4];
        found.copy_from_slice(&header[0..4]);
        if found != tag {
            return Err(StoreError::SectionTagMismatch { expected: tag, found });
        }
        let len64 = u64::from_le_bytes(header[4..12].try_into().expect("8 bytes"));
        let stored_crc = u32::from_le_bytes(header[12..16].try_into().expect("4 bytes"));
        let len = usize::try_from(len64)
            .map_err(|_| StoreError::Overflow { context: "section length" })?;
        let start = self.pos + SECTION_HEADER_LEN;
        if self.buf.len() - start < len {
            return Err(StoreError::Truncated { context: "section payload" });
        }
        let payload = &self.buf[start..start + len];
        let crc_start = std::time::Instant::now();
        let computed = crc32(payload);
        crate::metrics::record_crc(crc_start.elapsed().as_nanos() as u64, payload.len());
        if computed != stored_crc {
            return Err(StoreError::ChecksumMismatch {
                section: tag,
                stored: stored_crc,
                computed,
            });
        }
        self.pos = start + len;
        if self.version >= 2 {
            let pad = self.pos.next_multiple_of(SECTION_ALIGN) - self.pos;
            if self.buf.len() - self.pos < pad {
                return Err(StoreError::Truncated { context: "section padding" });
            }
            if self.buf[self.pos..self.pos + pad].iter().any(|&b| b != 0) {
                return Err(StoreError::Misaligned { section: tag, offset: self.pos });
            }
            self.pos += pad;
        }
        self.sections_left -= 1;
        Ok(Payload { tag, data: payload, file_offset: start, pos: 0 })
    }

    /// Asserts that every declared section was read and nothing follows the last one.
    pub fn finish(self) -> StoreResult<()> {
        if self.sections_left != 0 {
            return Err(StoreError::Truncated { context: "undeclared trailing sections" });
        }
        if self.pos != self.buf.len() {
            return Err(StoreError::TrailingBytes { count: self.buf.len() - self.pos });
        }
        Ok(())
    }
}

/// A checksum-verified section payload with typed, bounds-checked readers.
#[derive(Debug)]
pub struct Payload<'a> {
    tag: [u8; 4],
    data: &'a [u8],
    /// Absolute byte offset of the payload start within the snapshot file — what the
    /// zero-copy readers use to window a [`VecBuf`] into the mapped region.
    file_offset: usize,
    pos: usize,
}

impl<'a> Payload<'a> {
    /// This payload's section tag.
    pub fn tag(&self) -> [u8; 4] {
        self.tag
    }

    /// Total payload length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    fn take(&mut self, n: usize, context: &'static str) -> StoreResult<&'a [u8]> {
        if self.data.len() - self.pos < n {
            return Err(StoreError::Truncated { context });
        }
        let slice = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads a `u32`.
    pub fn get_u32(&mut self, context: &'static str) -> StoreResult<u32> {
        Ok(u32::from_le_bytes(self.take(4, context)?.try_into().expect("4 bytes")))
    }

    /// Reads a `u64` and converts it to `usize`, rejecting values that do not fit.
    pub fn get_u64_usize(&mut self, context: &'static str) -> StoreResult<usize> {
        let v = u64::from_le_bytes(self.take(8, context)?.try_into().expect("8 bytes"));
        usize::try_from(v).map_err(|_| StoreError::Overflow { context })
    }

    /// Reads a raw `u64`.
    pub fn get_u64(&mut self, context: &'static str) -> StoreResult<u64> {
        Ok(u64::from_le_bytes(self.take(8, context)?.try_into().expect("8 bytes")))
    }

    /// Reads an `f32`.
    pub fn get_f32(&mut self, context: &'static str) -> StoreResult<Scalar> {
        Ok(Scalar::from_le_bytes(self.take(4, context)?.try_into().expect("4 bytes")))
    }

    /// Reads `len` scalars. The byte size is computed with checked arithmetic and
    /// bounds-checked against the remaining payload *before* any allocation, so a
    /// hostile length cannot trigger an OOM or a panic.
    pub fn get_f32_vec(&mut self, len: usize, context: &'static str) -> StoreResult<Vec<Scalar>> {
        let bytes = len.checked_mul(4).ok_or(StoreError::Overflow { context })?;
        let raw = self.take(bytes, context)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| Scalar::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect())
    }

    /// Reads `len` `u32`s, with the same pre-allocation bounds checks as
    /// [`Payload::get_f32_vec`].
    pub fn get_u32_vec(&mut self, len: usize, context: &'static str) -> StoreResult<Vec<u32>> {
        let bytes = len.checked_mul(4).ok_or(StoreError::Overflow { context })?;
        let raw = self.take(bytes, context)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect())
    }

    /// Reads `len` raw bytes.
    pub fn get_bytes(&mut self, len: usize, context: &'static str) -> StoreResult<&'a [u8]> {
        self.take(len, context)
    }

    /// Reads `len` scalars into an owned-or-mapped buffer. With a [`SnapshotSource::Bytes`]
    /// source this copies (exactly [`Payload::get_f32_vec`]); with a mapped source it
    /// returns a zero-copy [`VecBuf`] window into the region — after the usual bounds
    /// checks, and rejecting any window that is not 4-byte aligned with a typed
    /// [`StoreError::Misaligned`] (well-formed v2 files can never trigger this; it is
    /// the guard in front of the typed cast).
    pub fn get_f32_buf(
        &mut self,
        len: usize,
        src: SnapshotSource<'_>,
        context: &'static str,
    ) -> StoreResult<VecBuf<Scalar>> {
        match src {
            SnapshotSource::Bytes(_) => Ok(self.get_f32_vec(len, context)?.into()),
            SnapshotSource::Mapped(region) => self.map_buf(len, region, context),
        }
    }

    /// Reads `len` `u32`s into an owned-or-mapped buffer (see [`Payload::get_f32_buf`]).
    pub fn get_u32_buf(
        &mut self,
        len: usize,
        src: SnapshotSource<'_>,
        context: &'static str,
    ) -> StoreResult<VecBuf<u32>> {
        match src {
            SnapshotSource::Bytes(_) => Ok(self.get_u32_vec(len, context)?.into()),
            SnapshotSource::Mapped(region) => self.map_buf(len, region, context),
        }
    }

    /// Shared zero-copy arm of the buffer readers: consumes `len` 4-byte elements from
    /// the payload cursor and windows them out of the mapped region.
    fn map_buf<T: p2h_core::BufElem>(
        &mut self,
        len: usize,
        region: &Arc<MmapRegion>,
        context: &'static str,
    ) -> StoreResult<VecBuf<T>> {
        let offset = self.file_offset + self.pos;
        let bytes = len.checked_mul(4).ok_or(StoreError::Overflow { context })?;
        self.take(bytes, context)?;
        VecBuf::mapped(Arc::clone(region) as Arc<dyn BufBacking>, offset, len)
            .map_err(|_| StoreError::Misaligned { section: self.tag, offset })
    }

    /// Asserts the payload was consumed exactly.
    pub fn finish(self) -> StoreResult<()> {
        if self.pos != self.data.len() {
            return Err(StoreError::SectionLength {
                section: self.tag,
                expected: self.pos as u64,
                found: self.data.len() as u64,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_reader_round_trip() {
        let mut writer = SnapshotWriter::new(IndexKind::BallTree);
        let meta = writer.section(*b"META");
        wire::put_u64(meta, 42);
        wire::put_u32(meta, 7);
        let body = writer.section(*b"PNTS");
        wire::put_f32_slice(body, &[1.5, -2.25, 0.0]);
        let bytes = writer.finish();

        let mut reader = SnapshotReader::new(&bytes).unwrap();
        assert_eq!(reader.kind, IndexKind::BallTree);
        assert_eq!(reader.version, FORMAT_VERSION);
        let mut meta = reader.section(*b"META").unwrap();
        assert_eq!(meta.get_u64("42").unwrap(), 42);
        assert_eq!(meta.get_u32("7").unwrap(), 7);
        meta.finish().unwrap();
        let mut body = reader.section(*b"PNTS").unwrap();
        assert_eq!(body.get_f32_vec(3, "floats").unwrap(), vec![1.5, -2.25, 0.0]);
        body.finish().unwrap();
        reader.finish().unwrap();
    }

    #[test]
    fn header_errors_are_typed() {
        assert!(matches!(
            SnapshotReader::new(&[]),
            Err(StoreError::Truncated { context: "file header" })
        ));
        let mut bytes = SnapshotWriter::new(IndexKind::LinearScan).finish();
        bytes[0] = b'X';
        assert!(matches!(SnapshotReader::new(&bytes), Err(StoreError::BadMagic { .. })));
        let mut bytes = SnapshotWriter::new(IndexKind::LinearScan).finish();
        bytes[4] = 99;
        assert!(matches!(
            SnapshotReader::new(&bytes),
            Err(StoreError::UnsupportedVersion { found: 99, .. })
        ));
        let mut bytes = SnapshotWriter::new(IndexKind::LinearScan).finish();
        bytes[6] = 17;
        assert!(matches!(SnapshotReader::new(&bytes), Err(StoreError::UnknownKind(17))));
    }

    #[test]
    fn section_errors_are_typed() {
        let mut writer = SnapshotWriter::new(IndexKind::BcTree);
        wire::put_u32(writer.section(*b"META"), 5);
        let good = writer.finish();

        // Wrong expected tag.
        let mut reader = SnapshotReader::new(&good).unwrap();
        assert!(matches!(reader.section(*b"PNTS"), Err(StoreError::SectionTagMismatch { .. })));

        // Flipped payload bit → checksum mismatch (first payload byte; the file may
        // end in zero padding, which is covered by the alignment check instead).
        let mut corrupt = good.clone();
        let payload_start = HEADER_LEN + SECTION_HEADER_LEN;
        corrupt[payload_start] ^= 0x40;
        let mut reader = SnapshotReader::new(&corrupt).unwrap();
        assert!(matches!(reader.section(*b"META"), Err(StoreError::ChecksumMismatch { .. })));

        // Huge declared length → truncated, no allocation.
        let mut huge = good.clone();
        huge[HEADER_LEN + 4..HEADER_LEN + 12].copy_from_slice(&u64::MAX.to_le_bytes());
        let mut reader = SnapshotReader::new(&huge).unwrap();
        assert!(matches!(
            reader.section(*b"META"),
            Err(StoreError::Truncated { .. }) | Err(StoreError::Overflow { .. })
        ));

        // Trailing garbage after the declared sections.
        let mut trailing = good.clone();
        trailing.extend_from_slice(b"junk");
        let mut reader = SnapshotReader::new(&trailing).unwrap();
        reader.section(*b"META").unwrap();
        assert!(matches!(reader.finish(), Err(StoreError::TrailingBytes { count: 4 })));

        // Reading more sections than declared.
        let mut reader = SnapshotReader::new(&good).unwrap();
        reader.section(*b"META").unwrap();
        assert!(matches!(reader.section(*b"PNTS"), Err(StoreError::Truncated { .. })));
    }

    #[test]
    fn payload_reads_are_bounds_checked() {
        let mut writer = SnapshotWriter::new(IndexKind::LinearScan);
        wire::put_u32(writer.section(*b"META"), 1);
        let bytes = writer.finish();
        let mut reader = SnapshotReader::new(&bytes).unwrap();
        let mut payload = reader.section(*b"META").unwrap();
        assert!(matches!(payload.get_u64("too long"), Err(StoreError::Truncated { .. })));
        assert!(matches!(
            payload.get_f32_vec(usize::MAX / 2, "overflow"),
            Err(StoreError::Overflow { .. })
        ));
        payload.get_u32("ok").unwrap();
        // Unconsumed payload bytes are an error through `finish`.
        let mut reader = SnapshotReader::new(&bytes).unwrap();
        let payload = reader.section(*b"META").unwrap();
        assert!(matches!(payload.finish(), Err(StoreError::SectionLength { .. })));
    }
}
