//! EINTR-hardened I/O: retry loops around the store's raw syscall paths.
//!
//! A signal delivered mid-syscall makes `read(2)`/`write(2)`/`open(2)` fail with
//! `EINTR` even though nothing is wrong — the call just needs to be reissued. `std`
//! absorbs some of these internally (`read_to_end` retries) but not all (`open`,
//! `rename`, short writes), and a snapshot load that aborts because a profiling
//! signal landed at the wrong instant is a robustness bug. Every raw filesystem
//! touch in this crate (and the socket paths in `p2h-net`) therefore goes through
//! [`retry_interrupted`].
//!
//! The loop is bounded: a syscall that reports `EINTR` on [`MAX_EINTR_ATTEMPTS`]
//! consecutive attempts (a misbehaving signal storm, or fault injection at rate 1)
//! surfaces as a typed `ErrorKind::Interrupted` error instead of spinning forever.
//!
//! Each call names a fail point (`store.read`, `store.write`, …) consulted through
//! [`p2h_obs::fault`]: an injected `eintr` fault makes one attempt fail exactly as a
//! real interrupted syscall would, which is how the tests prove a transient EINTR
//! never aborts a snapshot load.

use std::io;

use p2h_obs::fault;
use p2h_obs::FaultKind;

/// Consecutive `EINTR` failures tolerated before giving up with a typed error.
pub const MAX_EINTR_ATTEMPTS: u32 = 64;

/// Runs `op`, reissuing it while it fails with [`io::ErrorKind::Interrupted`]
/// (`EINTR`), up to [`MAX_EINTR_ATTEMPTS`] times. Any other outcome — success or a
/// different error — is returned as-is on the attempt it happens.
///
/// `point` names the fault-injection site checked before each attempt: `eintr` fails
/// the attempt as an interrupted syscall, `slow(ms)` delays it, and any other
/// configured kind fails the operation permanently (simulating a dead disk or closed
/// fd, which a retry loop must *not* absorb).
pub fn retry_interrupted<T>(point: &str, mut op: impl FnMut() -> io::Result<T>) -> io::Result<T> {
    for _ in 0..MAX_EINTR_ATTEMPTS {
        let result = match fault::check(point) {
            Some(FaultKind::Eintr) => {
                Err(io::Error::new(io::ErrorKind::Interrupted, "injected EINTR"))
            }
            Some(FaultKind::Slow(ms)) => {
                std::thread::sleep(std::time::Duration::from_millis(ms));
                op()
            }
            Some(kind) => Err(io::Error::other(format!("injected {} fault", kind.as_str()))),
            None => op(),
        };
        match result {
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                crate::metrics::record_eintr_retry();
                continue;
            }
            other => return other,
        }
    }
    Err(io::Error::new(
        io::ErrorKind::Interrupted,
        format!("still interrupted (EINTR) after {MAX_EINTR_ATTEMPTS} attempts"),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passes_results_and_foreign_errors_through() {
        assert_eq!(retry_interrupted("store.unit.none", || Ok(7)).unwrap(), 7);
        let err = retry_interrupted::<()>("store.unit.none", || {
            Err(io::Error::new(io::ErrorKind::NotFound, "gone"))
        })
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }

    #[test]
    fn transient_interrupts_are_absorbed() {
        let mut failures = 5;
        let value = retry_interrupted("store.unit.none", || {
            if failures > 0 {
                failures -= 1;
                return Err(io::Error::new(io::ErrorKind::Interrupted, "EINTR"));
            }
            Ok(42)
        })
        .unwrap();
        assert_eq!(value, 42);
    }

    #[test]
    fn persistent_interrupts_become_a_typed_error() {
        let mut attempts = 0u32;
        let err = retry_interrupted::<()>("store.unit.none", || {
            attempts += 1;
            Err(io::Error::new(io::ErrorKind::Interrupted, "EINTR"))
        })
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        assert_eq!(attempts, MAX_EINTR_ATTEMPTS);
        assert!(err.to_string().contains("attempts"));
    }
}
