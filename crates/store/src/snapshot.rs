//! The [`Snapshot`] trait: serialize a built index to the container format and restore
//! it with full validation.
//!
//! Snapshots store the index's constituent arrays **verbatim** — reordered points, id
//! mapping, node arena, centers, and (for BC-Tree) center norms and leaf structures —
//! so a loaded index answers every query bit-identically to the one that was saved,
//! on the same kernel backend. The arrays themselves are backend-independent: nothing
//! in a snapshot depends on whether it was written by an AVX2, NEON, or scalar build
//! (the `META` section records the writing backend purely as a provenance note).

use std::fs;
use std::path::Path;

use p2h_balltree::{BallTree, Node};
use p2h_bctree::{BcTree, BcTreeParts, LeafPointAux};
use p2h_core::{kernels, LinearScan, P2hIndex, PointSet, Scalar, VecBuf};
use p2h_hash::{FhIndex, FhParams, NhIndex, NhParams, ProjectionTables, QuadraticTransform};

use crate::format::{
    wire, IndexKind, Payload, SnapshotReader, SnapshotSource, SnapshotWriter, StoreError,
    StoreResult,
};
use crate::mmap::{LoadMode, SourceOwner};

/// Section tags of format version 1.
pub(crate) mod tags {
    /// Dimensions, counts, build parameters, and the provenance note.
    pub const META: [u8; 4] = *b"META";
    /// Reordered row-major point payload (`count × dim` f32).
    pub const PNTS: [u8; 4] = *b"PNTS";
    /// Reordered-position → original-index mapping (`count` u32).
    pub const IDS: [u8; 4] = *b"IDS ";
    /// Node arena (24 bytes per node).
    pub const NODE: [u8; 4] = *b"NODE";
    /// Flat center buffer (`node_count × dim` f32).
    pub const CNTR: [u8; 4] = *b"CNTR";
    /// Cached center norms (`node_count` f32).
    pub const NORM: [u8; 4] = *b"NORM";
    /// Per-point ball/cone leaf structures (`count × 3` f32).
    pub const AUXD: [u8; 4] = *b"AUXD";
    /// NH build parameters + norm-alignment constant.
    pub const NHPR: [u8; 4] = *b"NHPR";
    /// FH build parameters.
    pub const FHPR: [u8; 4] = *b"FHPR";
    /// Sampled quadratic transform (coordinate pairs + scale).
    pub const TPRS: [u8; 4] = *b"TPRS";
    /// Sorted random-projection tables (directions + per-table sorted arrays).
    pub const PROJ: [u8; 4] = *b"PROJ";
    /// One FH norm-based partition (global ids + its projection tables).
    pub const PRTN: [u8; 4] = *b"PRTN";
    /// Shard-group metadata (partitioner, shard count, totals).
    pub const GMET: [u8; 4] = *b"GMET";
    /// One shard's local-position → global-id mapping.
    pub const SIDS: [u8; 4] = *b"SIDS";
    /// Live-entry metadata (epoch, dim, next id, survivor count).
    pub const LMET: [u8; 4] = *b"LMET";
    /// Live-entry surviving global ids (base-local position → global id).
    pub const LIDS: [u8; 4] = *b"LIDS";
}

/// A built index that can be snapshotted to disk and restored without rebuilding.
pub trait Snapshot: P2hIndex + Sized {
    /// The index-kind tag this type writes into the snapshot header.
    const KIND: IndexKind;

    /// Serializes the index into a self-contained snapshot byte buffer (current
    /// container version).
    fn encode_snapshot(&self) -> Vec<u8>;

    /// Restores an index from a decode source: either plain bytes (copying) or a
    /// shared memory-mapped region, in which case every large array comes back as a
    /// zero-copy [`p2h_core::VecBuf`] window into the mapping. Answers are
    /// bit-identical either way; v1 containers silently demote a mapped source to the
    /// copying path (their payloads are unaligned).
    ///
    /// # Errors
    ///
    /// Every malformed input returns a typed [`StoreError`] — truncation, bad magic,
    /// wrong version, wrong kind, checksum mismatch, misalignment, size overflow, or
    /// arrays that fail the index's structural validation. No input can cause a panic
    /// or an unaligned cast.
    fn decode_snapshot_src(src: SnapshotSource<'_>) -> StoreResult<Self>;

    /// Restores an index from snapshot bytes (the copying path).
    ///
    /// # Errors
    ///
    /// See [`Snapshot::decode_snapshot_src`].
    fn decode_snapshot(bytes: &[u8]) -> StoreResult<Self> {
        Self::decode_snapshot_src(SnapshotSource::Bytes(bytes))
    }

    /// Writes the snapshot to `path` (via a `.tmp` sibling + rename, so a crashed
    /// writer never leaves a half-written file under the final name).
    fn save_snapshot(&self, path: &Path) -> StoreResult<()> {
        write_file_atomically(path, &self.encode_snapshot())
    }

    /// Reads and restores a snapshot from `path` by copying.
    fn load_snapshot(path: &Path) -> StoreResult<Self> {
        Self::load_snapshot_with(path, LoadMode::Copy)
    }

    /// Reads and restores a snapshot from `path` under an explicit [`LoadMode`]:
    /// [`LoadMode::Mmap`] maps the file and restores the arrays zero-copy.
    fn load_snapshot_with(path: &Path, mode: LoadMode) -> StoreResult<Self> {
        crate::metrics::timed_decode(|| {
            let owner = SourceOwner::read(path, mode)?;
            Self::decode_snapshot_src(owner.as_src())
        })
    }
}

/// Writes `bytes` to `path` through a temporary sibling and an atomic rename.
pub(crate) fn write_file_atomically(path: &Path, bytes: &[u8]) -> StoreResult<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = Path::new(&tmp);
    crate::retry::retry_interrupted("store.write", || fs::write(tmp, bytes))
        .map_err(|e| crate::format::io_error(tmp, e))?;
    crate::retry::retry_interrupted("store.write", || fs::rename(tmp, path))
        .map_err(|e| crate::format::io_error(path, e))
}

/// The `META` section contents shared by every index kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotMeta {
    /// Augmented point dimensionality.
    pub dim: usize,
    /// Number of indexed points.
    pub count: usize,
    /// Number of tree nodes (0 for a linear scan).
    pub node_count: usize,
    /// Maximum leaf size `N0` (0 for a linear scan).
    pub leaf_size: usize,
    /// RNG seed the index was built with (0 for a linear scan).
    pub build_seed: u64,
    /// Free-text provenance note (e.g. the kernel backend the writer ran on). Purely
    /// informational: the stored arrays are kernel-backend independent.
    pub note: String,
}

impl SnapshotMeta {
    fn write(&self, payload: &mut Vec<u8>) {
        wire::put_u64(payload, self.dim as u64);
        wire::put_u64(payload, self.count as u64);
        wire::put_u64(payload, self.node_count as u64);
        wire::put_u64(payload, self.leaf_size as u64);
        wire::put_u64(payload, self.build_seed);
        let note = self.note.as_bytes();
        wire::put_u32(payload, note.len() as u32);
        payload.extend_from_slice(note);
    }

    fn read(mut payload: Payload<'_>) -> StoreResult<Self> {
        let dim = payload.get_u64_usize("META dim")?;
        let count = payload.get_u64_usize("META count")?;
        let node_count = payload.get_u64_usize("META node count")?;
        let leaf_size = payload.get_u64_usize("META leaf size")?;
        let build_seed = payload.get_u64("META build seed")?;
        let note_len = payload.get_u32("META note length")? as usize;
        let note = String::from_utf8_lossy(payload.get_bytes(note_len, "META note")?).into_owned();
        payload.finish()?;
        Ok(Self { dim, count, node_count, leaf_size, build_seed, note })
    }
}

/// The provenance note recorded by this build's writers.
fn provenance_note() -> String {
    format!(
        "arrays are kernel-backend independent; written by the `{}` backend",
        kernels::active_backend().label()
    )
}

/// Reads the header + `META` section of a snapshot without loading the payloads.
///
/// Useful for tooling that lists a store's contents: the cost is one header parse and
/// one `META` checksum, independent of the index size.
pub fn snapshot_meta(bytes: &[u8]) -> StoreResult<(IndexKind, SnapshotMeta)> {
    let mut reader = SnapshotReader::new(bytes)?;
    let meta = SnapshotMeta::read(reader.section(tags::META)?)?;
    Ok((reader.kind, meta))
}

/// Checks `dim × count` against the platform *before* any array is read. The per-read
/// `len × 4` byte math is then checked again inside [`Payload`].
fn checked_scalars(dim: usize, count: usize) -> StoreResult<usize> {
    dim.checked_mul(count).ok_or(StoreError::Overflow { context: "dim × count" })
}

fn expect_kind(reader: &SnapshotReader<'_>, expected: IndexKind) -> StoreResult<()> {
    if reader.kind != expected {
        return Err(StoreError::KindMismatch { expected, found: reader.kind });
    }
    Ok(())
}

fn read_points(
    reader: &mut SnapshotReader<'_>,
    meta: &SnapshotMeta,
    src: SnapshotSource<'_>,
) -> StoreResult<PointSet> {
    let scalars = checked_scalars(meta.dim, meta.count)?;
    let mut payload = reader.section(tags::PNTS)?;
    let flat = payload.get_f32_buf(scalars, src, "PNTS payload")?;
    payload.finish()?;
    let points = PointSet::from_buf(meta.dim, flat)?;
    if points.len() != meta.count {
        return Err(StoreError::Invalid(p2h_core::Error::Corrupt(format!(
            "PNTS holds {} points, META declares {}",
            points.len(),
            meta.count
        ))));
    }
    Ok(points)
}

fn read_ids(
    reader: &mut SnapshotReader<'_>,
    meta: &SnapshotMeta,
    src: SnapshotSource<'_>,
) -> StoreResult<VecBuf<u32>> {
    let mut payload = reader.section(tags::IDS)?;
    let ids = payload.get_u32_buf(meta.count, src, "IDS payload")?;
    payload.finish()?;
    Ok(ids)
}

fn write_nodes(payload: &mut Vec<u8>, nodes: &[Node]) {
    payload.reserve(nodes.len() * 24);
    for node in nodes {
        wire::put_u32(payload, node.center_offset);
        wire::put_f32(payload, node.radius);
        wire::put_u32(payload, node.start);
        wire::put_u32(payload, node.end);
        wire::put_u32(payload, node.left);
        wire::put_u32(payload, node.right);
    }
}

fn read_nodes(reader: &mut SnapshotReader<'_>, meta: &SnapshotMeta) -> StoreResult<Vec<Node>> {
    let mut payload = reader.section(tags::NODE)?;
    let mut nodes = Vec::with_capacity(meta.node_count.min(payload.len() / 24));
    for _ in 0..meta.node_count {
        nodes.push(Node {
            center_offset: payload.get_u32("NODE center offset")?,
            radius: payload.get_f32("NODE radius")?,
            start: payload.get_u32("NODE start")?,
            end: payload.get_u32("NODE end")?,
            left: payload.get_u32("NODE left")?,
            right: payload.get_u32("NODE right")?,
        });
    }
    payload.finish()?;
    Ok(nodes)
}

fn read_centers(
    reader: &mut SnapshotReader<'_>,
    meta: &SnapshotMeta,
    src: SnapshotSource<'_>,
) -> StoreResult<VecBuf<Scalar>> {
    let scalars = checked_scalars(meta.dim, meta.node_count)?;
    let mut payload = reader.section(tags::CNTR)?;
    let centers = payload.get_f32_buf(scalars, src, "CNTR payload")?;
    payload.finish()?;
    Ok(centers)
}

impl Snapshot for LinearScan {
    const KIND: IndexKind = IndexKind::LinearScan;

    fn encode_snapshot(&self) -> Vec<u8> {
        let points = self.points();
        let meta = SnapshotMeta {
            dim: points.dim(),
            count: points.len(),
            node_count: 0,
            leaf_size: 0,
            build_seed: 0,
            note: provenance_note(),
        };
        let mut writer = SnapshotWriter::new(Self::KIND);
        meta.write(writer.section(tags::META));
        wire::put_f32_slice(writer.section(tags::PNTS), points.as_flat());
        writer.finish()
    }

    fn decode_snapshot_src(src: SnapshotSource<'_>) -> StoreResult<Self> {
        let mut reader = SnapshotReader::new(src.bytes())?;
        let src = src.for_version(reader.version);
        expect_kind(&reader, Self::KIND)?;
        let meta = SnapshotMeta::read(reader.section(tags::META)?)?;
        let points = read_points(&mut reader, &meta, src)?;
        reader.finish()?;
        Ok(LinearScan::new(points))
    }
}

impl Snapshot for BallTree {
    const KIND: IndexKind = IndexKind::BallTree;

    fn encode_snapshot(&self) -> Vec<u8> {
        let meta = SnapshotMeta {
            dim: self.points().dim(),
            count: self.points().len(),
            node_count: self.nodes().len(),
            leaf_size: self.leaf_size(),
            build_seed: self.build_seed(),
            note: provenance_note(),
        };
        let mut writer = SnapshotWriter::new(Self::KIND);
        meta.write(writer.section(tags::META));
        wire::put_f32_slice(writer.section(tags::PNTS), self.points().as_flat());
        wire::put_u32_slice(writer.section(tags::IDS), self.original_ids());
        write_nodes(writer.section(tags::NODE), self.nodes());
        wire::put_f32_slice(writer.section(tags::CNTR), self.centers());
        writer.finish()
    }

    fn decode_snapshot_src(src: SnapshotSource<'_>) -> StoreResult<Self> {
        let mut reader = SnapshotReader::new(src.bytes())?;
        let src = src.for_version(reader.version);
        expect_kind(&reader, Self::KIND)?;
        let meta = SnapshotMeta::read(reader.section(tags::META)?)?;
        let points = read_points(&mut reader, &meta, src)?;
        let ids = read_ids(&mut reader, &meta, src)?;
        let nodes = read_nodes(&mut reader, &meta)?;
        let centers = read_centers(&mut reader, &meta, src)?;
        reader.finish()?;
        // `from_parts` runs the full structural validation (ranges, partition,
        // permutation, adjacent sibling centers) and never panics on bad arrays.
        Ok(BallTree::from_parts(points, ids, nodes, centers, meta.leaf_size, meta.build_seed)?)
    }
}

impl Snapshot for BcTree {
    const KIND: IndexKind = IndexKind::BcTree;

    fn encode_snapshot(&self) -> Vec<u8> {
        let meta = SnapshotMeta {
            dim: self.points().dim(),
            count: self.points().len(),
            node_count: self.nodes().len(),
            leaf_size: self.leaf_size(),
            build_seed: self.build_seed(),
            note: provenance_note(),
        };
        let mut writer = SnapshotWriter::new(Self::KIND);
        meta.write(writer.section(tags::META));
        wire::put_f32_slice(writer.section(tags::PNTS), self.points().as_flat());
        wire::put_u32_slice(writer.section(tags::IDS), self.original_ids());
        write_nodes(writer.section(tags::NODE), self.nodes());
        wire::put_f32_slice(writer.section(tags::CNTR), self.centers());
        wire::put_f32_slice(writer.section(tags::NORM), self.center_norms());
        let aux_payload = writer.section(tags::AUXD);
        aux_payload.reserve(self.leaf_aux().len() * 12);
        for aux in self.leaf_aux() {
            wire::put_f32(aux_payload, aux.radius);
            wire::put_f32(aux_payload, aux.x_cos);
            wire::put_f32(aux_payload, aux.x_sin);
        }
        writer.finish()
    }

    fn decode_snapshot_src(src: SnapshotSource<'_>) -> StoreResult<Self> {
        let mut reader = SnapshotReader::new(src.bytes())?;
        let src = src.for_version(reader.version);
        expect_kind(&reader, Self::KIND)?;
        let meta = SnapshotMeta::read(reader.section(tags::META)?)?;
        let points = read_points(&mut reader, &meta, src)?;
        let ids = read_ids(&mut reader, &meta, src)?;
        let nodes = read_nodes(&mut reader, &meta)?;
        let centers = read_centers(&mut reader, &meta, src)?;
        let mut payload = reader.section(tags::NORM)?;
        let center_norms = payload.get_f32_buf(meta.node_count, src, "NORM payload")?;
        payload.finish()?;
        let mut payload = reader.section(tags::AUXD)?;
        let mut aux = Vec::with_capacity(meta.count.min(payload.len() / 12));
        for _ in 0..meta.count {
            aux.push(LeafPointAux {
                radius: payload.get_f32("AUXD radius")?,
                x_cos: payload.get_f32("AUXD x_cos")?,
                x_sin: payload.get_f32("AUXD x_sin")?,
            });
        }
        payload.finish()?;
        reader.finish()?;
        Ok(BcTree::from_parts(BcTreeParts {
            points,
            original_ids: ids,
            nodes,
            centers,
            center_norms,
            aux,
            leaf_size: meta.leaf_size,
            build_seed: meta.build_seed,
        })?)
    }
}

// ---------------------------------------------------------------------------
// NH / FH hashing baselines
// ---------------------------------------------------------------------------

/// Serializes a sampled quadratic transform into a `TPRS` payload.
fn write_transform(payload: &mut Vec<u8>, transform: &QuadraticTransform) {
    wire::put_u64(payload, transform.input_dim() as u64);
    wire::put_f32(payload, transform.scale());
    wire::put_u64(payload, transform.pairs().len() as u64);
    payload.reserve(transform.pairs().len() * 8);
    for &(i, j) in transform.pairs() {
        wire::put_u32(payload, i);
        wire::put_u32(payload, j);
    }
}

/// Restores a transform from a `TPRS` payload (full structural validation via
/// [`QuadraticTransform::from_parts`]).
fn read_transform(mut payload: Payload<'_>) -> StoreResult<QuadraticTransform> {
    let input_dim = payload.get_u64_usize("TPRS input dim")?;
    let scale = payload.get_f32("TPRS scale")?;
    let pair_count = payload.get_u64_usize("TPRS pair count")?;
    // Bound the reserve by the remaining payload before trusting the declared count.
    let mut pairs = Vec::with_capacity(pair_count.min(payload.len() / 8));
    for _ in 0..pair_count {
        pairs.push((payload.get_u32("TPRS pair i")?, payload.get_u32("TPRS pair j")?));
    }
    payload.finish()?;
    Ok(QuadraticTransform::from_parts(input_dim, pairs, scale)?)
}

/// Serializes projection tables into a payload: `dim`, `m`, `n`, the direction matrix,
/// then the sorted values (`m × n` f32, table-major) and the matching ids (`m × n`
/// u32). The struct-of-arrays layout (v2) is what lets the zero-copy loader serve the
/// value and id arrays as typed windows; v1 interleaved the `(value, id)` pairs.
fn write_projection_tables(payload: &mut Vec<u8>, tables: &ProjectionTables) {
    wire::put_u64(payload, tables.dim() as u64);
    wire::put_u64(payload, tables.table_count() as u64);
    wire::put_u64(payload, tables.len() as u64);
    wire::put_f32_slice(payload, tables.directions());
    wire::put_f32_slice(payload, tables.values());
    wire::put_u32_slice(payload, tables.ids());
}

/// Restores projection tables from a payload (sortedness and per-table permutations are
/// validated by [`ProjectionTables::from_parts`]). `version` selects the layout: v2 is
/// struct-of-arrays (zero-copy capable), v1 interleaved pairs (always copied).
fn read_projection_tables(
    payload: &mut Payload<'_>,
    src: SnapshotSource<'_>,
    version: u16,
) -> StoreResult<ProjectionTables> {
    let dim = payload.get_u64_usize("PROJ dim")?;
    let m = payload.get_u64_usize("PROJ table count")?;
    let n = payload.get_u64_usize("PROJ length")?;
    let direction_scalars =
        dim.checked_mul(m).ok_or(StoreError::Overflow { context: "PROJ m × dim" })?;
    let table_entries = m.checked_mul(n).ok_or(StoreError::Overflow { context: "PROJ m × n" })?;
    if version >= 2 {
        let directions = payload.get_f32_buf(direction_scalars, src, "PROJ directions")?;
        let values = payload.get_f32_buf(table_entries, src, "PROJ values")?;
        let ids = payload.get_u32_buf(table_entries, src, "PROJ ids")?;
        return Ok(ProjectionTables::from_parts(dim, directions, n, values, ids)?);
    }
    let directions = payload.get_f32_vec(direction_scalars, "PROJ directions")?;
    let mut values = Vec::with_capacity(table_entries.min(payload.len() / 8));
    let mut ids = Vec::with_capacity(table_entries.min(payload.len() / 8));
    for _ in 0..table_entries {
        values.push(payload.get_f32("PROJ value")?);
        ids.push(payload.get_u32("PROJ id")?);
    }
    Ok(ProjectionTables::from_parts(dim, directions, n, values, ids)?)
}

impl Snapshot for NhIndex {
    const KIND: IndexKind = IndexKind::Nh;

    fn encode_snapshot(&self) -> Vec<u8> {
        let points = self.points();
        let meta = SnapshotMeta {
            dim: points.dim(),
            count: points.len(),
            node_count: 0,
            leaf_size: 0,
            build_seed: self.params().seed,
            note: provenance_note(),
        };
        let mut writer = SnapshotWriter::new(Self::KIND);
        meta.write(writer.section(tags::META));
        let params = writer.section(tags::NHPR);
        wire::put_u64(params, self.params().lambda_factor as u64);
        wire::put_u64(params, self.params().tables as u64);
        wire::put_u64(params, self.params().collision_threshold as u64);
        wire::put_u64(params, self.params().seed);
        wire::put_f32(params, self.alignment_constant());
        wire::put_f32_slice(writer.section(tags::PNTS), points.as_flat());
        write_transform(writer.section(tags::TPRS), self.transform());
        write_projection_tables(writer.section(tags::PROJ), self.tables());
        writer.finish()
    }

    fn decode_snapshot_src(src: SnapshotSource<'_>) -> StoreResult<Self> {
        let mut reader = SnapshotReader::new(src.bytes())?;
        let src = src.for_version(reader.version);
        expect_kind(&reader, Self::KIND)?;
        let meta = SnapshotMeta::read(reader.section(tags::META)?)?;
        let mut payload = reader.section(tags::NHPR)?;
        let params = NhParams {
            lambda_factor: payload.get_u64_usize("NHPR lambda factor")?,
            tables: payload.get_u64_usize("NHPR tables")?,
            collision_threshold: payload.get_u64_usize("NHPR collision threshold")?,
            seed: payload.get_u64("NHPR seed")?,
        };
        let alignment_m = payload.get_f32("NHPR alignment constant")?;
        payload.finish()?;
        let points = read_points(&mut reader, &meta, src)?;
        let transform = read_transform(reader.section(tags::TPRS)?)?;
        let mut payload = reader.section(tags::PROJ)?;
        let tables = read_projection_tables(&mut payload, src, reader.version)?;
        payload.finish()?;
        reader.finish()?;
        // `from_parts` cross-validates the arrays (dims, counts, λ + 1 coordinate).
        Ok(NhIndex::from_parts(points, transform, tables, params, alignment_m)?)
    }
}

impl Snapshot for FhIndex {
    const KIND: IndexKind = IndexKind::Fh;

    fn encode_snapshot(&self) -> Vec<u8> {
        let points = self.points();
        let meta = SnapshotMeta {
            dim: points.dim(),
            count: points.len(),
            node_count: 0,
            leaf_size: 0,
            build_seed: self.params().seed,
            note: provenance_note(),
        };
        let mut writer = SnapshotWriter::new(Self::KIND);
        meta.write(writer.section(tags::META));
        let params = writer.section(tags::FHPR);
        wire::put_u64(params, self.params().lambda_factor as u64);
        wire::put_u64(params, self.params().tables as u64);
        wire::put_u64(params, self.params().partitions as u64);
        wire::put_u64(params, self.params().collision_threshold as u64);
        wire::put_u64(params, self.params().seed);
        wire::put_u64(params, self.partition_count() as u64);
        wire::put_f32_slice(writer.section(tags::PNTS), points.as_flat());
        write_transform(writer.section(tags::TPRS), self.transform());
        for p in 0..self.partition_count() {
            let payload = writer.section(tags::PRTN);
            let ids = self.partition_ids(p);
            wire::put_u64(payload, ids.len() as u64);
            wire::put_u32_slice(payload, ids);
            write_projection_tables(payload, self.partition_tables(p));
        }
        writer.finish()
    }

    fn decode_snapshot_src(src: SnapshotSource<'_>) -> StoreResult<Self> {
        let mut reader = SnapshotReader::new(src.bytes())?;
        let src = src.for_version(reader.version);
        expect_kind(&reader, Self::KIND)?;
        let meta = SnapshotMeta::read(reader.section(tags::META)?)?;
        let mut payload = reader.section(tags::FHPR)?;
        let params = FhParams {
            lambda_factor: payload.get_u64_usize("FHPR lambda factor")?,
            tables: payload.get_u64_usize("FHPR tables")?,
            partitions: payload.get_u64_usize("FHPR partitions")?,
            collision_threshold: payload.get_u64_usize("FHPR collision threshold")?,
            seed: payload.get_u64("FHPR seed")?,
        };
        let partition_count = payload.get_u64_usize("FHPR partition count")?;
        payload.finish()?;
        let points = read_points(&mut reader, &meta, src)?;
        let transform = read_transform(reader.section(tags::TPRS)?)?;
        let mut partitions = Vec::with_capacity(partition_count.min(meta.count));
        for _ in 0..partition_count {
            let mut payload = reader.section(tags::PRTN)?;
            let id_count = payload.get_u64_usize("PRTN id count")?;
            let ids = payload.get_u32_buf(id_count, src, "PRTN ids")?;
            let tables = read_projection_tables(&mut payload, src, reader.version)?;
            payload.finish()?;
            partitions.push((ids, tables));
        }
        reader.finish()?;
        // `from_parts` validates the disjoint cover and every dimension relation.
        Ok(FhIndex::from_parts(points, transform, partitions, params)?)
    }
}
