//! A directory of named snapshots with a `MANIFEST` file: the on-disk unit a serving
//! process cold-starts from.
//!
//! Layout:
//!
//! ```text
//! <dir>/MANIFEST        text; first line `p2h-store 1`, then `<name>\t<file>` lines
//! <dir>/<name>.p2hs     one snapshot per registered index
//! ```
//!
//! The manifest maps registry names to snapshot files; the index *kind* is not in the
//! manifest — it lives in each snapshot's header, where it is checksummed with the
//! rest. Saves go through temp-file + rename, so a crash mid-save leaves the previous
//! manifest and snapshot intact. The store is a single-writer structure: concurrent
//! `save` calls from multiple processes can lose manifest updates (last rename wins).

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use p2h_balltree::BallTree;
use p2h_bctree::BcTree;
use p2h_core::{LinearScan, P2hIndex};

use crate::format::{io_error, IndexKind, SnapshotReader, StoreError, StoreResult};
use crate::snapshot::{write_file_atomically, Snapshot};

/// Name of the manifest file inside a store directory.
pub const MANIFEST_FILE: &str = "MANIFEST";

/// File extension of snapshot files.
pub const SNAPSHOT_EXT: &str = "p2hs";

/// First line of every manifest.
const MANIFEST_HEADER: &str = "p2h-store 1";

/// The parsed name → file mapping of a store directory.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Manifest {
    /// Sorted so renders (and therefore manifest diffs) are deterministic.
    entries: BTreeMap<String, String>,
}

impl Manifest {
    fn parse(text: &str) -> StoreResult<Self> {
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, first)) if first.trim() == MANIFEST_HEADER => {}
            Some((_, first)) => {
                return Err(StoreError::Manifest {
                    line: 1,
                    message: format!("expected header `{MANIFEST_HEADER}`, found `{first}`"),
                })
            }
            None => return Err(StoreError::Manifest { line: 0, message: "empty manifest".into() }),
        }
        let mut entries = BTreeMap::new();
        for (idx, line) in lines {
            let line = line.trim_end();
            if line.is_empty() {
                continue;
            }
            let (name, file) = line.split_once('\t').ok_or_else(|| StoreError::Manifest {
                line: idx + 1,
                message: format!("expected `<name>\\t<file>`, found `{line}`"),
            })?;
            validate_name(name)?;
            // The file column obeys the same character rules as names (it is a name
            // plus an extension): a tampered manifest cannot point the loader at
            // hidden files, absolute paths, or anything outside the store directory.
            if !is_safe_file_component(file, 100 + SNAPSHOT_EXT.len() + 1) {
                return Err(StoreError::Manifest {
                    line: idx + 1,
                    message: format!("invalid snapshot file name `{file}`"),
                });
            }
            if entries.insert(name.to_string(), file.to_string()).is_some() {
                return Err(StoreError::Manifest {
                    line: idx + 1,
                    message: format!("duplicate entry for `{name}`"),
                });
            }
        }
        Ok(Self { entries })
    }

    fn render(&self) -> String {
        let mut out = String::from(MANIFEST_HEADER);
        out.push('\n');
        for (name, file) in &self.entries {
            out.push_str(name);
            out.push('\t');
            out.push_str(file);
            out.push('\n');
        }
        out
    }
}

/// Whether `s` is a single safe path component: 1–`max_len` characters from
/// `[A-Za-z0-9._-]`, not starting with a dot (no hidden files, no `..`, no separators).
fn is_safe_file_component(s: &str, max_len: usize) -> bool {
    let valid_chars = s.chars().all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'));
    !s.is_empty() && s.len() <= max_len && valid_chars && !s.starts_with('.')
}

/// Validates a registry name for use as a snapshot file stem: 1–100 characters from
/// `[A-Za-z0-9._-]`, not starting with a dot (no hidden files, no path traversal).
fn validate_name(name: &str) -> StoreResult<()> {
    if !is_safe_file_component(name, 100) {
        return Err(StoreError::InvalidName(name.to_string()));
    }
    Ok(())
}

/// An index restored from a snapshot, tagged by its concrete type.
#[derive(Debug)]
pub enum LoadedIndex {
    /// A restored [`LinearScan`].
    LinearScan(LinearScan),
    /// A restored [`BallTree`].
    BallTree(BallTree),
    /// A restored [`BcTree`].
    BcTree(BcTree),
}

impl LoadedIndex {
    /// Which index kind this is.
    pub fn kind(&self) -> IndexKind {
        match self {
            LoadedIndex::LinearScan(_) => IndexKind::LinearScan,
            LoadedIndex::BallTree(_) => IndexKind::BallTree,
            LoadedIndex::BcTree(_) => IndexKind::BcTree,
        }
    }

    /// Erases the concrete type into a shared, searchable handle.
    pub fn into_shared(self) -> Arc<dyn P2hIndex> {
        match self {
            LoadedIndex::LinearScan(index) => Arc::new(index),
            LoadedIndex::BallTree(index) => Arc::new(index),
            LoadedIndex::BcTree(index) => Arc::new(index),
        }
    }

    /// Borrows the index through the search trait.
    pub fn as_index(&self) -> &dyn P2hIndex {
        match self {
            LoadedIndex::LinearScan(index) => index,
            LoadedIndex::BallTree(index) => index,
            LoadedIndex::BcTree(index) => index,
        }
    }
}

/// A snapshot store rooted at a directory.
#[derive(Debug, Clone)]
pub struct Store {
    dir: PathBuf,
}

impl Store {
    /// Opens an existing store directory (the manifest must be present and parse).
    pub fn open(dir: impl AsRef<Path>) -> StoreResult<Self> {
        let store = Self { dir: dir.as_ref().to_path_buf() };
        store.manifest()?; // fail fast on a missing or malformed manifest
        Ok(store)
    }

    /// Creates a store directory (and an empty manifest) if it does not exist, then
    /// opens it. Idempotent on an existing store.
    pub fn create(dir: impl AsRef<Path>) -> StoreResult<Self> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir).map_err(|e| io_error(dir, e))?;
        let manifest_path = dir.join(MANIFEST_FILE);
        if !manifest_path.exists() {
            write_file_atomically(&manifest_path, Manifest::default().render().as_bytes())?;
        }
        Self::open(dir)
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The registered index names, sorted.
    pub fn names(&self) -> StoreResult<Vec<String>> {
        Ok(self.manifest()?.entries.keys().cloned().collect())
    }

    /// Snapshots `index` under `name`, replacing any previous snapshot of that name,
    /// and returns the snapshot file path.
    pub fn save<S: Snapshot>(&self, name: &str, index: &S) -> StoreResult<PathBuf> {
        validate_name(name)?;
        let file = format!("{name}.{SNAPSHOT_EXT}");
        let path = self.dir.join(&file);
        index.save_snapshot(&path)?;
        let mut manifest = self.manifest()?;
        manifest.entries.insert(name.to_string(), file);
        write_file_atomically(&self.dir.join(MANIFEST_FILE), manifest.render().as_bytes())?;
        Ok(path)
    }

    /// Loads the index registered under `name` as its concrete type.
    ///
    /// # Errors
    ///
    /// [`StoreError::MissingEntry`] if the name is not in the manifest,
    /// [`StoreError::KindMismatch`] if the snapshot holds a different index kind, and
    /// any snapshot decoding error (see [`Snapshot::decode_snapshot`]).
    pub fn load<S: Snapshot>(&self, name: &str) -> StoreResult<S> {
        S::decode_snapshot(&self.snapshot_bytes(name)?)
    }

    /// Loads the index registered under `name`, dispatching on the kind recorded in the
    /// snapshot header.
    pub fn load_any(&self, name: &str) -> StoreResult<LoadedIndex> {
        decode_any(&self.snapshot_bytes(name)?)
    }

    /// Loads every index in the manifest, in name order. The manifest is read once, so
    /// the listing and the per-entry paths come from one consistent view even if a
    /// writer replaces the manifest concurrently.
    pub fn load_all(&self) -> StoreResult<Vec<(String, LoadedIndex)>> {
        let manifest = self.manifest()?;
        manifest
            .entries
            .iter()
            .map(|(name, file)| {
                let path = self.dir.join(file);
                let bytes = fs::read(&path).map_err(|e| io_error(&path, e))?;
                Ok((name.clone(), decode_any(&bytes)?))
            })
            .collect()
    }

    /// The path a snapshot of `name` lives at (whether or not it exists yet).
    pub fn snapshot_path(&self, name: &str) -> StoreResult<PathBuf> {
        let manifest = self.manifest()?;
        match manifest.entries.get(name) {
            Some(file) => Ok(self.dir.join(file)),
            None => Err(StoreError::MissingEntry(name.to_string())),
        }
    }

    fn snapshot_bytes(&self, name: &str) -> StoreResult<Vec<u8>> {
        let path = self.snapshot_path(name)?;
        fs::read(&path).map_err(|e| io_error(&path, e))
    }

    fn manifest(&self) -> StoreResult<Manifest> {
        let path = self.dir.join(MANIFEST_FILE);
        let text = fs::read_to_string(&path).map_err(|e| io_error(&path, e))?;
        Manifest::parse(&text)
    }
}

/// Decodes a snapshot buffer into whichever index kind its header declares.
fn decode_any(bytes: &[u8]) -> StoreResult<LoadedIndex> {
    Ok(match SnapshotReader::new(bytes)?.kind {
        IndexKind::LinearScan => LoadedIndex::LinearScan(LinearScan::decode_snapshot(bytes)?),
        IndexKind::BallTree => LoadedIndex::BallTree(BallTree::decode_snapshot(bytes)?),
        IndexKind::BcTree => LoadedIndex::BcTree(BcTree::decode_snapshot(bytes)?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_round_trip() {
        let mut manifest = Manifest::default();
        manifest.entries.insert("ball".into(), "ball.p2hs".into());
        manifest.entries.insert("scan-v2".into(), "scan-v2.p2hs".into());
        let parsed = Manifest::parse(&manifest.render()).unwrap();
        assert_eq!(parsed, manifest);
    }

    #[test]
    fn manifest_rejects_malformed_text() {
        assert!(matches!(
            Manifest::parse(""),
            Err(StoreError::Manifest { line: 0, .. }) | Err(StoreError::Manifest { line: 1, .. })
        ));
        assert!(matches!(
            Manifest::parse("wrong header\n"),
            Err(StoreError::Manifest { line: 1, .. })
        ));
        assert!(matches!(
            Manifest::parse("p2h-store 1\nno-tab-here\n"),
            Err(StoreError::Manifest { line: 2, .. })
        ));
        assert!(matches!(
            Manifest::parse("p2h-store 1\na\ta.p2hs\na\tb.p2hs\n"),
            Err(StoreError::Manifest { line: 3, .. })
        ));
        assert!(matches!(
            Manifest::parse("p2h-store 1\n../evil\tx.p2hs\n"),
            Err(StoreError::InvalidName(_))
        ));
    }

    #[test]
    fn manifest_rejects_traversal_in_the_file_column() {
        // A tampered file column must not be able to point the loader outside the
        // store directory (the manifest is plain text, not checksum-protected).
        for evil in ["../../etc/passwd", "/etc/passwd", ".hidden.p2hs", "a/b.p2hs", ""] {
            let text = format!("p2h-store 1\nname\t{evil}\n");
            assert!(
                matches!(Manifest::parse(&text), Err(StoreError::Manifest { line: 2, .. })),
                "file column `{evil}` must be rejected"
            );
        }
        // The longest name the store itself writes still round-trips.
        let long = "n".repeat(100);
        let text = format!("p2h-store 1\n{long}\t{long}.{SNAPSHOT_EXT}\n");
        assert!(Manifest::parse(&text).is_ok());
    }

    #[test]
    fn name_validation() {
        for good in ["a", "ball-tree_v2.1", "X", &"n".repeat(100)] {
            assert!(validate_name(good).is_ok(), "{good}");
        }
        for bad in ["", ".hidden", "a/b", "a\\b", "a b", "ü", &"n".repeat(101)] {
            assert!(matches!(validate_name(bad), Err(StoreError::InvalidName(_))), "{bad}");
        }
    }
}
