//! A directory of named snapshots with a `MANIFEST` file: the on-disk unit a serving
//! process cold-starts from.
//!
//! Layout:
//!
//! ```text
//! <dir>/MANIFEST             text; first line `p2h-store 1`, then one line per entry:
//!                              <name>\t<file>                              (single index)
//!                              <name>\tshard-group\t<map>\t<s0>\t<s1>…     (sharded index)
//!                              <name>\tlive\t<ids>\t<base|->\t<w0>\t<w1>…  (live index)
//! <dir>/<name>.p2hs          one snapshot per single index
//! <dir>/<name>.g<E>.map.p2hs shard-group map file (epoch E): id mappings + metadata
//! <dir>/<name>.g<E>.s<K>.p2hs  shard K of group <name>, epoch E
//! <dir>/<name>.l<E>.ids.p2hs live-entry id file (epoch E): surviving global ids
//! <dir>/<name>.l<E>.base.p2hs  live-entry base snapshot, epoch E (absent when empty)
//! <dir>/<name>.l<E>.wal      live-entry write-ahead-log segment opened at epoch E
//! ```
//!
//! The manifest maps registry names to snapshot files; the index *kind* is not in the
//! manifest — it lives in each snapshot's header, where it is checksummed with the
//! rest. Saves go through temp-file + rename, so a crash mid-save leaves the previous
//! manifest and snapshot intact.
//!
//! Shard groups are **multi-file** saves, committed atomically through the manifest:
//! every file of a group save is written under a fresh *epoch* suffix (never reusing a
//! live file name), and only once all of them are durably in place is the manifest
//! swapped via its own tmp + rename. A crash at any intermediate point leaves the old
//! manifest referencing the old (complete) epoch: no manifest entry ever dangles and no
//! group is ever observed half-replaced. Files of superseded epochs are deleted
//! best-effort after the manifest commit; stray staged files from a crashed save are
//! ignored by readers (only the manifest names files) and reclaimed by the next
//! successful save of the same name. The store is a single-writer structure: concurrent
//! `save` calls from multiple processes can lose manifest updates (last rename wins).

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use p2h_balltree::BallTree;
use p2h_bctree::BcTree;
use p2h_core::{LinearScan, P2hIndex, VecBuf};
use p2h_hash::{FhIndex, NhIndex};

use crate::format::{
    io_error, wire, IndexKind, SnapshotReader, SnapshotSource, SnapshotWriter, StoreError,
    StoreResult,
};
use crate::mmap::{LoadMode, SourceOwner};
use crate::snapshot::{tags, write_file_atomically, Snapshot};

/// Name of the manifest file inside a store directory.
pub const MANIFEST_FILE: &str = "MANIFEST";

/// File extension of snapshot files.
pub const SNAPSHOT_EXT: &str = "p2hs";

/// First line of every manifest.
const MANIFEST_HEADER: &str = "p2h-store 1";

/// Marker in the second column of a manifest line that introduces a shard group.
const GROUP_MARKER: &str = "shard-group";

/// Marker in the second column of a manifest line that introduces a live entry
/// (a `p2h-live` mutable index: id file, optional base snapshot, ≥ 1 WAL segment).
const LIVE_MARKER: &str = "live";

/// Placeholder in a live manifest line's base column when the entry has no base
/// snapshot (every point lives in the WAL-replayed memtable).
const LIVE_NO_BASE: &str = "-";

/// Default minimum age before the open-time sweep reclaims an unreferenced staged
/// file. A concurrent (single) writer stages its files seconds before the manifest
/// commit; the grace window keeps a racing reader's sweep from deleting them
/// mid-save, while crash leftovers — which persist indefinitely — age past it and are
/// reclaimed. Override per process with `P2H_SWEEP_GRACE_SECS`, or per handle with
/// [`Store::with_sweep_grace`].
pub const SWEEP_GRACE: std::time::Duration = std::time::Duration::from_secs(60);

/// Resolves the sweep grace window from a `P2H_SWEEP_GRACE_SECS` value: whole
/// seconds, falling back to [`SWEEP_GRACE`] when absent or unparseable (a malformed
/// fleet-wide variable must not change sweep behavior silently to zero).
fn parse_sweep_grace(value: Option<&str>) -> std::time::Duration {
    value
        .and_then(|raw| raw.trim().parse::<u64>().ok())
        .map_or(SWEEP_GRACE, std::time::Duration::from_secs)
}

fn sweep_grace_from_env() -> std::time::Duration {
    parse_sweep_grace(std::env::var("P2H_SWEEP_GRACE_SECS").ok().as_deref())
}

/// One manifest entry: either a single snapshot file or a shard group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum ManifestEntry {
    /// A single `<name>.p2hs` snapshot.
    Single(String),
    /// A shard group: the map file plus one snapshot file per shard, in ordinal order.
    Group { map_file: String, shard_files: Vec<String> },
    /// A live entry: id file, optional base snapshot, and the WAL segments to replay
    /// over it, in segment order. More than one WAL segment is the mid-compaction
    /// state: the next segment is committed *before* the epoch swap so acknowledged
    /// writes are never referenced only by an uncommitted file.
    Live { ids_file: String, base_file: Option<String>, wal_files: Vec<String> },
}

impl ManifestEntry {
    /// Every file this entry references (used for replaced-entry cleanup and for the
    /// sweep's live set — a referenced WAL segment must never be reclaimed).
    pub(crate) fn files(&self) -> Vec<&str> {
        match self {
            ManifestEntry::Single(file) => vec![file.as_str()],
            ManifestEntry::Group { map_file, shard_files } => {
                let mut files = Vec::with_capacity(shard_files.len() + 1);
                files.push(map_file.as_str());
                files.extend(shard_files.iter().map(String::as_str));
                files
            }
            ManifestEntry::Live { ids_file, base_file, wal_files } => {
                let mut files = Vec::with_capacity(wal_files.len() + 2);
                files.push(ids_file.as_str());
                files.extend(base_file.as_deref());
                files.extend(wal_files.iter().map(String::as_str));
                files
            }
        }
    }
}

/// The parsed name → entry mapping of a store directory.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct Manifest {
    /// Sorted so renders (and therefore manifest diffs) are deterministic.
    pub(crate) entries: BTreeMap<String, ManifestEntry>,
}

impl Manifest {
    fn parse(text: &str) -> StoreResult<Self> {
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, first)) if first.trim() == MANIFEST_HEADER => {}
            Some((_, first)) => {
                return Err(StoreError::Manifest {
                    line: 1,
                    message: format!("expected header `{MANIFEST_HEADER}`, found `{first}`"),
                })
            }
            None => return Err(StoreError::Manifest { line: 0, message: "empty manifest".into() }),
        }
        let mut entries = BTreeMap::new();
        for (idx, line) in lines {
            let line = line.trim_end();
            if line.is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split('\t').collect();
            let entry = match fields.as_slice() {
                [name, file] => {
                    validate_name(name)?;
                    validate_file_column(file, idx + 1)?;
                    (name.to_string(), ManifestEntry::Single(file.to_string()))
                }
                [name, marker, map_file, shard_files @ ..]
                    if *marker == GROUP_MARKER && !shard_files.is_empty() =>
                {
                    validate_name(name)?;
                    validate_file_column(map_file, idx + 1)?;
                    for file in shard_files {
                        validate_file_column(file, idx + 1)?;
                    }
                    (
                        name.to_string(),
                        ManifestEntry::Group {
                            map_file: map_file.to_string(),
                            shard_files: shard_files.iter().map(|s| s.to_string()).collect(),
                        },
                    )
                }
                [name, marker, ids_file, base_file, wal_files @ ..]
                    if *marker == LIVE_MARKER && !wal_files.is_empty() =>
                {
                    validate_name(name)?;
                    validate_file_column(ids_file, idx + 1)?;
                    let base_file = if *base_file == LIVE_NO_BASE {
                        None
                    } else {
                        validate_file_column(base_file, idx + 1)?;
                        Some(base_file.to_string())
                    };
                    for file in wal_files {
                        validate_file_column(file, idx + 1)?;
                    }
                    (
                        name.to_string(),
                        ManifestEntry::Live {
                            ids_file: ids_file.to_string(),
                            base_file,
                            wal_files: wal_files.iter().map(|s| s.to_string()).collect(),
                        },
                    )
                }
                _ => {
                    return Err(StoreError::Manifest {
                        line: idx + 1,
                        message: format!(
                            "expected `<name>\\t<file>`, \
                             `<name>\\t{GROUP_MARKER}\\t<map>\\t<shard>…`, or \
                             `<name>\\t{LIVE_MARKER}\\t<ids>\\t<base|{LIVE_NO_BASE}>\\t<wal>…`, \
                             found `{line}`"
                        ),
                    })
                }
            };
            let (name, parsed) = entry;
            if entries.insert(name.clone(), parsed).is_some() {
                return Err(StoreError::Manifest {
                    line: idx + 1,
                    message: format!("duplicate entry for `{name}`"),
                });
            }
        }
        Ok(Self { entries })
    }

    fn render(&self) -> String {
        let mut out = String::from(MANIFEST_HEADER);
        out.push('\n');
        for (name, entry) in &self.entries {
            out.push_str(name);
            match entry {
                ManifestEntry::Single(file) => {
                    out.push('\t');
                    out.push_str(file);
                }
                ManifestEntry::Group { map_file, shard_files } => {
                    out.push('\t');
                    out.push_str(GROUP_MARKER);
                    out.push('\t');
                    out.push_str(map_file);
                    for file in shard_files {
                        out.push('\t');
                        out.push_str(file);
                    }
                }
                ManifestEntry::Live { ids_file, base_file, wal_files } => {
                    out.push('\t');
                    out.push_str(LIVE_MARKER);
                    out.push('\t');
                    out.push_str(ids_file);
                    out.push('\t');
                    out.push_str(base_file.as_deref().unwrap_or(LIVE_NO_BASE));
                    for file in wal_files {
                        out.push('\t');
                        out.push_str(file);
                    }
                }
            }
            out.push('\n');
        }
        out
    }
}

/// Longest file name the store itself writes: a 100-char name plus the epoch/shard
/// suffix (`.g<epoch>.s<ordinal>.p2hs`); 60 bytes of headroom covers both counters.
const MAX_FILE_COMPONENT: usize = 160;

/// Whether `s` is a single safe path component: 1–`max_len` characters from
/// `[A-Za-z0-9._-]`, not starting with a dot (no hidden files, no `..`, no separators).
fn is_safe_file_component(s: &str, max_len: usize) -> bool {
    let valid_chars = s.chars().all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'));
    !s.is_empty() && s.len() <= max_len && valid_chars && !s.starts_with('.')
}

/// Validates a manifest file column. The file columns obey the same character rules as
/// names (a name plus extensions): a tampered manifest cannot point the loader at
/// hidden files, absolute paths, or anything outside the store directory.
pub(crate) fn validate_file_column(file: &str, line: usize) -> StoreResult<()> {
    if !is_safe_file_component(file, MAX_FILE_COMPONENT) {
        return Err(StoreError::Manifest {
            line,
            message: format!("invalid snapshot file name `{file}`"),
        });
    }
    Ok(())
}

/// Validates a registry name for use as a snapshot file stem: 1–100 characters from
/// `[A-Za-z0-9._-]`, not starting with a dot (no hidden files, no path traversal).
pub(crate) fn validate_name(name: &str) -> StoreResult<()> {
    if !is_safe_file_component(name, 100) {
        return Err(StoreError::InvalidName(name.to_string()));
    }
    Ok(())
}

/// An index restored from a snapshot, tagged by its concrete type.
#[derive(Debug)]
pub enum LoadedIndex {
    /// A restored [`LinearScan`].
    LinearScan(LinearScan),
    /// A restored [`BallTree`].
    BallTree(BallTree),
    /// A restored [`BcTree`].
    BcTree(BcTree),
    /// A restored [`NhIndex`].
    Nh(NhIndex),
    /// A restored [`FhIndex`].
    Fh(FhIndex),
}

impl LoadedIndex {
    /// Which index kind this is.
    pub fn kind(&self) -> IndexKind {
        match self {
            LoadedIndex::LinearScan(_) => IndexKind::LinearScan,
            LoadedIndex::BallTree(_) => IndexKind::BallTree,
            LoadedIndex::BcTree(_) => IndexKind::BcTree,
            LoadedIndex::Nh(_) => IndexKind::Nh,
            LoadedIndex::Fh(_) => IndexKind::Fh,
        }
    }

    /// Erases the concrete type into a shared, searchable handle.
    pub fn into_shared(self) -> Arc<dyn P2hIndex> {
        match self {
            LoadedIndex::LinearScan(index) => Arc::new(index),
            LoadedIndex::BallTree(index) => Arc::new(index),
            LoadedIndex::BcTree(index) => Arc::new(index),
            LoadedIndex::Nh(index) => Arc::new(index),
            LoadedIndex::Fh(index) => Arc::new(index),
        }
    }

    /// Borrows the index through the search trait.
    pub fn as_index(&self) -> &dyn P2hIndex {
        match self {
            LoadedIndex::LinearScan(index) => index,
            LoadedIndex::BallTree(index) => index,
            LoadedIndex::BcTree(index) => index,
            LoadedIndex::Nh(index) => index,
            LoadedIndex::Fh(index) => index,
        }
    }

    /// Serializes the held index into a snapshot byte buffer (dispatching to the
    /// variant's [`Snapshot::encode_snapshot`]).
    pub fn encode_snapshot(&self) -> Vec<u8> {
        match self {
            LoadedIndex::LinearScan(index) => index.encode_snapshot(),
            LoadedIndex::BallTree(index) => index.encode_snapshot(),
            LoadedIndex::BcTree(index) => index.encode_snapshot(),
            LoadedIndex::Nh(index) => index.encode_snapshot(),
            LoadedIndex::Fh(index) => index.encode_snapshot(),
        }
    }
}

/// The `GMET` metadata of a shard group, describing how the shards relate to the
/// original point set. The partitioner tag is opaque to the store — the `p2h-shard`
/// crate defines the tag values and restores its `Partitioner` from them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardGroupMeta {
    /// Opaque partitioner strategy tag (defined by `p2h-shard`).
    pub partitioner_tag: u32,
    /// Shard count the partitioner was asked for (the actual count may be smaller when
    /// empty shards were dropped).
    pub requested_shards: u64,
    /// Total number of points across every shard.
    pub total_count: usize,
    /// Augmented point dimensionality shared by every shard.
    pub dim: usize,
    /// RNG seed the sharded index was built with.
    pub build_seed: u64,
}

/// A fully loaded, structurally validated shard group: the restored per-shard indexes
/// plus the local-position → global-id mappings that tie them together.
#[derive(Debug)]
pub struct ShardGroup {
    /// Group metadata (partitioner, totals).
    pub meta: ShardGroupMeta,
    /// Per-shard id mappings: `id_maps[s][local] = global`. Strictly increasing per
    /// shard; a disjoint cover of `0..meta.total_count` across shards. Buffer-backed:
    /// under `LoadMode::Mmap` these are zero-copy windows into the map file.
    pub id_maps: Vec<VecBuf<u32>>,
    /// The restored shards, in ordinal order.
    pub shards: Vec<LoadedIndex>,
}

/// The file set of a live entry (a `p2h-live` mutable index), as recorded in the
/// manifest. The store hands these out without opening them: replaying the WAL
/// segments and layering the memtable over the base is `p2h-live`'s job
/// (`LiveIndex::open` consumes this).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LiveEntryFiles {
    /// The id file (`<name>.l<E>.ids.p2hs`, kind [`IndexKind::LiveIds`]).
    pub ids_file: String,
    /// The base snapshot (`<name>.l<E>.base.p2hs`), absent when the entry has no
    /// compacted base (all points live in the WAL-replayed memtable).
    pub base_file: Option<String>,
    /// The WAL segments to replay over the base, in segment order. More than one
    /// segment means a compaction committed its next segment but crashed (or has not
    /// yet reached) the epoch swap.
    pub wal_files: Vec<String>,
}

/// One entry of a store directory, as returned by [`Store::load_entries`].
#[derive(Debug)]
pub enum StoreEntry {
    /// A single restored index.
    Single(LoadedIndex),
    /// A restored shard group.
    ShardGroup(ShardGroup),
    /// A live entry's file set. Deliberately *not* opened by the store — `p2h-live`
    /// owns WAL replay and memtable reconstruction.
    Live(LiveEntryFiles),
}

/// Structural validation shared by the save and load paths of shard groups: shapes,
/// dimensions, and the global id mapping must be mutually consistent.
fn validate_group(
    meta: &ShardGroupMeta,
    id_maps: &[VecBuf<u32>],
    shards: &[LoadedIndex],
) -> StoreResult<()> {
    let inconsistent = |message: String| Err(StoreError::GroupInconsistent { message });
    if shards.is_empty() {
        return inconsistent("a shard group needs at least one shard".into());
    }
    if id_maps.len() != shards.len() {
        return inconsistent(format!("{} id mappings for {} shards", id_maps.len(), shards.len()));
    }
    // Anchor the declared total to the decoded id maps *before* allocating anything
    // sized by it: the map lengths are bounded by actual file bytes, while
    // `meta.total_count` is an attacker-controlled header field — a huge declared
    // value must be a typed error, not an allocation.
    let n = meta.total_count;
    let actual: usize = id_maps.iter().map(|ids| ids.len()).sum();
    if actual != n {
        return inconsistent(format!("id maps list {actual} points, GMET declares {n}"));
    }
    let mut seen = vec![false; n];
    for (ordinal, (ids, shard)) in id_maps.iter().zip(shards).enumerate() {
        let index = shard.as_index();
        if index.len() != ids.len() || ids.is_empty() {
            return inconsistent(format!(
                "shard {ordinal} holds {} points but its id map lists {}",
                index.len(),
                ids.len()
            ));
        }
        if index.dim() != meta.dim {
            return inconsistent(format!(
                "shard {ordinal} has dim {} but the group declares {}",
                index.dim(),
                meta.dim
            ));
        }
        let mut prev: Option<u32> = None;
        for &id in ids.iter() {
            if prev.is_some_and(|p| p >= id) {
                return inconsistent(format!("shard {ordinal} id map is not strictly increasing"));
            }
            prev = Some(id);
            let id = id as usize;
            if id >= n || seen[id] {
                return inconsistent(format!(
                    "shard {ordinal} id map is not part of a permutation of 0..{n}"
                ));
            }
            seen[id] = true;
        }
    }
    if seen.iter().any(|&s| !s) {
        return inconsistent(format!("shard id maps do not cover every point of 0..{n}"));
    }
    Ok(())
}

/// Encodes the shard-group map file (kind [`IndexKind::ShardMap`]): one `GMET` section
/// followed by one `SIDS` section per shard.
fn encode_shard_map(meta: &ShardGroupMeta, id_maps: &[VecBuf<u32>]) -> Vec<u8> {
    let mut writer = SnapshotWriter::new(IndexKind::ShardMap);
    let payload = writer.section(tags::GMET);
    wire::put_u32(payload, meta.partitioner_tag);
    wire::put_u64(payload, meta.requested_shards);
    wire::put_u64(payload, id_maps.len() as u64);
    wire::put_u64(payload, meta.total_count as u64);
    wire::put_u64(payload, meta.dim as u64);
    wire::put_u64(payload, meta.build_seed);
    for ids in id_maps {
        let payload = writer.section(tags::SIDS);
        wire::put_u64(payload, ids.len() as u64);
        wire::put_u32_slice(payload, ids);
    }
    writer.finish()
}

/// Decodes a shard-group map file into its metadata and id mappings (buffer-backed:
/// with a mapped source the id maps become zero-copy windows into the map file).
fn decode_shard_map(src: SnapshotSource<'_>) -> StoreResult<(ShardGroupMeta, Vec<VecBuf<u32>>)> {
    let bytes = src.bytes();
    let mut reader = SnapshotReader::new(bytes)?;
    let src = src.for_version(reader.version);
    if reader.kind != IndexKind::ShardMap {
        return Err(StoreError::KindMismatch { expected: IndexKind::ShardMap, found: reader.kind });
    }
    let mut payload = reader.section(tags::GMET)?;
    let partitioner_tag = payload.get_u32("GMET partitioner tag")?;
    let requested_shards = payload.get_u64("GMET requested shards")?;
    let shard_count = payload.get_u64_usize("GMET shard count")?;
    let total_count = payload.get_u64_usize("GMET total count")?;
    let dim = payload.get_u64_usize("GMET dim")?;
    let build_seed = payload.get_u64("GMET build seed")?;
    payload.finish()?;
    let meta = ShardGroupMeta { partitioner_tag, requested_shards, total_count, dim, build_seed };
    // Reserve bounded by what the file can physically hold (one section header per
    // shard), not by the declared count; the loop below stops with a typed error the
    // moment the declared sections outrun the real ones.
    let mut id_maps =
        Vec::with_capacity(shard_count.min(bytes.len() / crate::format::SECTION_HEADER_LEN));
    for _ in 0..shard_count {
        let mut payload = reader.section(tags::SIDS)?;
        let len = payload.get_u64_usize("SIDS length")?;
        id_maps.push(payload.get_u32_buf(len, src, "SIDS ids")?);
        payload.finish()?;
    }
    reader.finish()?;
    Ok((meta, id_maps))
}

/// A snapshot store rooted at a directory.
#[derive(Debug, Clone)]
pub struct Store {
    dir: PathBuf,
    /// How this handle materializes loads ([`LoadMode::Copy`] or zero-copy
    /// [`LoadMode::Mmap`]); saving is mode-independent.
    mode: LoadMode,
    /// Minimum age before this handle's sweeps reclaim an unreferenced staged file
    /// (default [`SWEEP_GRACE`], overridable via `P2H_SWEEP_GRACE_SECS` or
    /// [`Store::with_sweep_grace`]).
    sweep_grace: std::time::Duration,
}

impl Store {
    /// Opens an existing store directory (the manifest must be present and parse),
    /// with the load mode taken from the `P2H_STORE_MMAP` environment variable
    /// ([`LoadMode::from_env`]).
    ///
    /// Opening also sweeps crash leftovers: unreferenced `.tmp` files and staged
    /// epoch files (`<name>.e<E>.p2hs`, `<name>.g<E>.…p2hs`) that no manifest entry
    /// names — e.g. from a save that crashed between staging and the manifest commit —
    /// are deleted best-effort, never touching files the manifest references. Only
    /// files older than [`SWEEP_GRACE`] are reclaimed, so a reader opening the store
    /// while a (single) writer is mid-save cannot delete freshly staged files out
    /// from under the upcoming manifest commit; genuine crash leftovers age past the
    /// grace window and are removed by a later open.
    pub fn open(dir: impl AsRef<Path>) -> StoreResult<Self> {
        Self::open_with(dir, LoadMode::from_env())
    }

    /// Opens an existing store directory with an explicit [`LoadMode`].
    pub fn open_with(dir: impl AsRef<Path>, mode: LoadMode) -> StoreResult<Self> {
        let store =
            Self { dir: dir.as_ref().to_path_buf(), mode, sweep_grace: sweep_grace_from_env() };
        let manifest = store.manifest()?; // fail fast on a missing or malformed manifest
        store.sweep_stale_files(&manifest);
        Ok(store)
    }

    /// Creates a store directory (and an empty manifest) if it does not exist, then
    /// opens it. Idempotent on an existing store.
    pub fn create(dir: impl AsRef<Path>) -> StoreResult<Self> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir).map_err(|e| io_error(dir, e))?;
        let manifest_path = dir.join(MANIFEST_FILE);
        if !manifest_path.exists() {
            write_file_atomically(&manifest_path, Manifest::default().render().as_bytes())?;
        }
        Self::open(dir)
    }

    /// Returns this handle with a different load mode (cheap; shares the directory).
    pub fn with_mode(mut self, mode: LoadMode) -> Self {
        self.mode = mode;
        self
    }

    /// Returns this handle with a different sweep grace window. Tests and embedders
    /// that manage their own save/open concurrency can shrink it (down to zero for
    /// an immediate sweep) without touching the process environment.
    pub fn with_sweep_grace(mut self, grace: std::time::Duration) -> Self {
        self.sweep_grace = grace;
        self
    }

    /// The minimum age before this handle's sweeps reclaim an unreferenced staged
    /// file.
    pub fn sweep_grace(&self) -> std::time::Duration {
        self.sweep_grace
    }

    /// Runs a stale-file sweep now (the same one [`Store::open`] runs) and returns
    /// how many crash-leftover files it deleted.
    ///
    /// # Errors
    ///
    /// Fails only if the manifest cannot be read — the sweep itself is best-effort.
    pub fn sweep_now(&self) -> StoreResult<u64> {
        let manifest = self.manifest()?;
        Ok(self.sweep_stale_files(&manifest))
    }

    /// The load mode this handle uses.
    pub fn load_mode(&self) -> LoadMode {
        self.mode
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Deletes crash leftovers the manifest does not reference: `.tmp` files and
    /// epoch-staged snapshot files, but only ones older than [`Store::sweep_grace`]
    /// (an in-flight save's freshly staged files must survive until its manifest
    /// commit, even if another process opens the store mid-save). Best-effort — a
    /// failed unlink or an unreadable mtime only leaks a stale file, reclaimed on a
    /// later open or by the next save of the same name. Returns the number of files
    /// deleted.
    fn sweep_stale_files(&self, manifest: &Manifest) -> u64 {
        let live: BTreeSet<&str> =
            manifest.entries.values().flat_map(|entry| entry.files()).collect();
        let Ok(entries) = fs::read_dir(&self.dir) else { return 0 };
        let now = std::time::SystemTime::now();
        let mut swept = 0u64;
        let mut future_skipped = 0u64;
        for entry in entries.flatten() {
            let file_name = entry.file_name();
            let Some(name) = file_name.to_str() else { continue };
            if name == MANIFEST_FILE || live.contains(name) {
                continue;
            }
            if !name.ends_with(".tmp") && !is_epoch_staged(name) {
                continue;
            }
            let Ok(mtime) = entry.metadata().and_then(|m| m.modified()) else { continue };
            let age = match now.duration_since(mtime) {
                Ok(age) => age,
                Err(_) => {
                    // An mtime in the future (clock skew between hosts sharing the
                    // directory, or a restored backup) makes the file's age
                    // unknowable — it is not provably stale, so leave it alone.
                    future_skipped += 1;
                    continue;
                }
            };
            if age >= self.sweep_grace && fs::remove_file(entry.path()).is_ok() {
                swept += 1;
            }
        }
        crate::metrics::record_sweep(swept, future_skipped);
        swept
    }

    /// The registered entry names (single indexes and shard groups), sorted.
    pub fn names(&self) -> StoreResult<Vec<String>> {
        Ok(self.manifest()?.entries.keys().cloned().collect())
    }

    /// Whether the entry registered under `name` is a shard group. `None` if the name
    /// is not registered at all.
    pub fn is_shard_group(&self, name: &str) -> StoreResult<Option<bool>> {
        Ok(self
            .manifest()?
            .entries
            .get(name)
            .map(|entry| matches!(entry, ManifestEntry::Group { .. })))
    }

    /// Snapshots `index` under `name`, replacing any previous entry of that name
    /// (single or group), and returns the snapshot file path.
    ///
    /// The snapshot file is fully staged (tmp + rename) *before* the manifest is
    /// rewritten, and a **replacement never reuses the live file name**: a fresh name
    /// saves as `<name>.p2hs`, overwriting an existing single entry stages under the
    /// next epoch (`<name>.e<E>.p2hs`) and only the manifest commit switches readers
    /// over. A crash or error at any point therefore leaves the previous manifest
    /// *and the previous snapshot bytes* intact — never a dangling entry, never a
    /// half-replaced snapshot. The superseded file is deleted best-effort after the
    /// commit.
    pub fn save<S: Snapshot>(&self, name: &str, index: &S) -> StoreResult<PathBuf> {
        validate_name(name)?;
        let mut manifest = self.manifest()?;
        let file = match manifest.entries.get(name) {
            // Replacing a live single snapshot: stage under the next epoch name so
            // the old bytes survive until the manifest commit.
            Some(ManifestEntry::Single(existing)) => {
                let epoch = single_epoch(existing, name).map_or(1, |e| e + 1);
                format!("{name}.e{epoch}.{SNAPSHOT_EXT}")
            }
            // Fresh name, or replacing a group (whose files all carry `.g<E>.`
            // suffixes): the plain name is not live.
            _ => format!("{name}.{SNAPSHOT_EXT}"),
        };
        let path = self.dir.join(&file);
        index.save_snapshot(&path)?;
        let replaced = manifest.entries.insert(name.to_string(), ManifestEntry::Single(file));
        self.commit_manifest(&manifest)?;
        self.remove_superseded_files(replaced.as_ref(), &manifest.entries[name]);
        Ok(path)
    }

    /// Snapshots a shard group under `name`: one map file holding `meta` and the id
    /// mappings plus one snapshot file per shard, committed atomically.
    ///
    /// Every file of the group is written under a fresh epoch suffix (never reusing a
    /// live name) and fully staged before the manifest commit, so a crash at any point
    /// leaves the previous entry — single or group — complete and loadable, and never
    /// a dangling manifest reference. Files of the replaced entry are deleted
    /// best-effort after the commit.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::GroupInconsistent`] if the metadata, id mappings, and
    /// shards disagree (shapes, dimensions, or the global permutation), plus any I/O
    /// error from staging the files.
    pub fn save_shard_group(
        &self,
        name: &str,
        meta: &ShardGroupMeta,
        id_maps: &[VecBuf<u32>],
        shards: &[LoadedIndex],
    ) -> StoreResult<()> {
        validate_name(name)?;
        validate_group(meta, id_maps, shards)?;
        let mut manifest = self.manifest()?;
        let epoch = match manifest.entries.get(name) {
            Some(ManifestEntry::Group { map_file, .. }) => {
                group_epoch(map_file, name).map_or(1, |e| e + 1)
            }
            _ => 1,
        };

        // Stage every group file first; the manifest rename below is the commit point.
        let map_file = format!("{name}.g{epoch}.map.{SNAPSHOT_EXT}");
        let mut shard_files = Vec::with_capacity(shards.len());
        for (ordinal, shard) in shards.iter().enumerate() {
            let file = format!("{name}.g{epoch}.s{ordinal}.{SNAPSHOT_EXT}");
            write_file_atomically(&self.dir.join(&file), &shard.encode_snapshot())?;
            shard_files.push(file);
        }
        write_file_atomically(&self.dir.join(&map_file), &encode_shard_map(meta, id_maps))?;

        let replaced = manifest
            .entries
            .insert(name.to_string(), ManifestEntry::Group { map_file, shard_files });
        self.commit_manifest(&manifest)?;
        self.remove_superseded_files(replaced.as_ref(), &manifest.entries[name]);
        Ok(())
    }

    /// Loads the shard group registered under `name`, fully validated: the map file
    /// and every shard snapshot decode, and the id mappings are strictly increasing
    /// per shard and form a disjoint cover of `0..total_count` across shards.
    ///
    /// # Errors
    ///
    /// [`StoreError::MissingEntry`] if the name is not registered,
    /// [`StoreError::EntryKind`] if it refers to a single snapshot, any snapshot
    /// decoding error, and [`StoreError::GroupInconsistent`] if the files are
    /// individually valid but mutually inconsistent.
    pub fn load_shard_group(&self, name: &str) -> StoreResult<ShardGroup> {
        let manifest = self.manifest()?;
        match manifest.entries.get(name) {
            None => Err(StoreError::MissingEntry(name.to_string())),
            Some(ManifestEntry::Single(_)) | Some(ManifestEntry::Live { .. }) => {
                Err(StoreError::EntryKind { name: name.to_string(), is_group: false })
            }
            Some(ManifestEntry::Group { map_file, shard_files }) => {
                self.load_group_files(map_file, shard_files)
            }
        }
    }

    fn load_group_files(&self, map_file: &str, shard_files: &[String]) -> StoreResult<ShardGroup> {
        crate::metrics::timed_decode(|| self.load_group_files_inner(map_file, shard_files))
    }

    fn load_group_files_inner(
        &self,
        map_file: &str,
        shard_files: &[String],
    ) -> StoreResult<ShardGroup> {
        // One region (or buffer) per epoch file: the map file plus every shard file.
        let map_owner = self.read_owner(map_file)?;
        let (meta, id_maps) = decode_shard_map(map_owner.as_src())?;
        if id_maps.len() != shard_files.len() {
            return Err(StoreError::GroupInconsistent {
                message: format!(
                    "map file declares {} shards, manifest lists {} files",
                    id_maps.len(),
                    shard_files.len()
                ),
            });
        }
        let shards = shard_files
            .iter()
            .map(|file| decode_any_src(self.read_owner(file)?.as_src()))
            .collect::<StoreResult<Vec<_>>>()?;
        validate_group(&meta, &id_maps, &shards)?;
        Ok(ShardGroup { meta, id_maps, shards })
    }

    /// Reads one store file under this handle's load mode.
    pub(crate) fn read_owner(&self, file: &str) -> StoreResult<SourceOwner> {
        SourceOwner::read(&self.dir.join(file), self.mode)
    }

    /// Loads the index registered under `name` as its concrete type.
    ///
    /// # Errors
    ///
    /// [`StoreError::MissingEntry`] if the name is not in the manifest,
    /// [`StoreError::EntryKind`] if it refers to a shard group,
    /// [`StoreError::KindMismatch`] if the snapshot holds a different index kind, and
    /// any snapshot decoding error (see [`Snapshot::decode_snapshot`]).
    pub fn load<S: Snapshot>(&self, name: &str) -> StoreResult<S> {
        crate::metrics::timed_decode(|| S::decode_snapshot_src(self.snapshot_owner(name)?.as_src()))
    }

    /// Loads the index registered under `name`, dispatching on the kind recorded in the
    /// snapshot header.
    pub fn load_any(&self, name: &str) -> StoreResult<LoadedIndex> {
        crate::metrics::timed_decode(|| decode_any_src(self.snapshot_owner(name)?.as_src()))
    }

    /// Loads every single-index entry in the manifest, in name order. The manifest is
    /// read once, so the listing and the per-entry paths come from one consistent view
    /// even if a writer replaces the manifest concurrently.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::EntryKind`] if the store contains a shard group — callers
    /// that serve mixed stores use [`Store::load_entries`] instead.
    pub fn load_all(&self) -> StoreResult<Vec<(String, LoadedIndex)>> {
        self.load_entries()?
            .into_iter()
            .map(|(name, entry)| match entry {
                StoreEntry::Single(index) => Ok((name, index)),
                StoreEntry::ShardGroup(_) | StoreEntry::Live(_) => {
                    Err(StoreError::EntryKind { name, is_group: true })
                }
            })
            .collect()
    }

    /// Loads every entry in the manifest — single indexes and shard groups — in name
    /// order, from one consistent manifest read. Loading is all-or-nothing: any
    /// missing, corrupt, or mutually inconsistent file fails the whole call.
    pub fn load_entries(&self) -> StoreResult<Vec<(String, StoreEntry)>> {
        let manifest = self.manifest()?;
        manifest
            .entries
            .iter()
            .map(|(name, entry)| {
                let loaded = match entry {
                    ManifestEntry::Single(file) => {
                        StoreEntry::Single(crate::metrics::timed_decode(|| {
                            decode_any_src(self.read_owner(file)?.as_src())
                        })?)
                    }
                    ManifestEntry::Group { map_file, shard_files } => {
                        StoreEntry::ShardGroup(self.load_group_files(map_file, shard_files)?)
                    }
                    ManifestEntry::Live { ids_file, base_file, wal_files } => {
                        StoreEntry::Live(LiveEntryFiles {
                            ids_file: ids_file.clone(),
                            base_file: base_file.clone(),
                            wal_files: wal_files.clone(),
                        })
                    }
                };
                Ok((name.clone(), loaded))
            })
            .collect()
    }

    /// The path a single-index snapshot of `name` lives at.
    ///
    /// # Errors
    ///
    /// [`StoreError::MissingEntry`] if the name is not registered and
    /// [`StoreError::EntryKind`] if it refers to a shard group (whose files are listed
    /// in the manifest, not derived from the name).
    pub fn snapshot_path(&self, name: &str) -> StoreResult<PathBuf> {
        let manifest = self.manifest()?;
        match manifest.entries.get(name) {
            Some(ManifestEntry::Single(file)) => Ok(self.dir.join(file)),
            Some(ManifestEntry::Group { .. }) | Some(ManifestEntry::Live { .. }) => {
                Err(StoreError::EntryKind { name: name.to_string(), is_group: true })
            }
            None => Err(StoreError::MissingEntry(name.to_string())),
        }
    }

    /// Reads the single-index snapshot registered under `name` under this handle's
    /// load mode.
    fn snapshot_owner(&self, name: &str) -> StoreResult<SourceOwner> {
        let path = self.snapshot_path(name)?;
        SourceOwner::read(&path, self.mode)
    }

    pub(crate) fn manifest(&self) -> StoreResult<Manifest> {
        let path = self.dir.join(MANIFEST_FILE);
        let text = crate::retry::retry_interrupted("store.read", || fs::read_to_string(&path))
            .map_err(|e| io_error(&path, e))?;
        Manifest::parse(&text)
    }

    pub(crate) fn commit_manifest(&self, manifest: &Manifest) -> StoreResult<()> {
        write_file_atomically(&self.dir.join(MANIFEST_FILE), manifest.render().as_bytes())
    }

    /// Deletes the files of a replaced entry that the new entry no longer references.
    /// Best-effort: the manifest has already committed, so a failed unlink only leaks
    /// a stale file (reclaimed by the next save of the same name).
    pub(crate) fn remove_superseded_files(
        &self,
        replaced: Option<&ManifestEntry>,
        current: &ManifestEntry,
    ) {
        let Some(replaced) = replaced else { return };
        let live: BTreeSet<&str> = current.files().into_iter().collect();
        for file in replaced.files() {
            if !live.contains(file) {
                let _ = fs::remove_file(self.dir.join(file));
            }
        }
    }
}

/// Whether `file` matches one of the store's *epoch-staged* naming patterns —
/// `<name>.e<E>.p2hs` (single replacement), `<name>.g<E>.map.p2hs` /
/// `<name>.g<E>.s<K>.p2hs` (shard group), or `<name>.l<E>.ids.p2hs` /
/// `<name>.l<E>.base.p2hs` / `<name>.l<E>.wal` (live entry). Unreferenced files
/// matching these patterns are crash leftovers and are reclaimed by the open-time
/// sweep; plain `<name>.p2hs` files never match (conservative: they could be
/// user-managed snapshots). WAL segments the manifest references are excluded from
/// sweeping *before* this pattern check (they are in the live set) — only segments no
/// manifest entry names, i.e. from a crashed live create or a crashed compaction
/// phase, ever age into reclamation.
fn is_epoch_staged(file: &str) -> bool {
    let digits = |s: &str| !s.is_empty() && s.bytes().all(|b| b.is_ascii_digit());
    let live_epoch = |part: &str| part.len() > 1 && part.starts_with('l') && digits(&part[1..]);
    if let Some(stem) = file.strip_suffix(".wal") {
        // `<name>.l<E>.wal`: a WAL segment.
        return matches!(stem.split('.').next_back(), Some(last) if live_epoch(last));
    }
    let Some(stem) = file.strip_suffix(&format!(".{SNAPSHOT_EXT}")) else { return false };
    let parts: Vec<&str> = stem.split('.').collect();
    match parts.as_slice() {
        [.., mid, last] if mid.len() > 1 && mid.starts_with('g') && digits(&mid[1..]) => {
            *last == "map" || (last.len() > 1 && last.starts_with('s') && digits(&last[1..]))
        }
        [.., mid, last] if live_epoch(mid) => *last == "ids" || *last == "base",
        [_, .., last] if last.len() > 1 && last.starts_with('e') && digits(&last[1..]) => true,
        _ => false,
    }
}

/// Parses the epoch out of a shard-group map file name (`<name>.g<epoch>.map.p2hs`).
fn group_epoch(map_file: &str, name: &str) -> Option<u64> {
    map_file
        .strip_prefix(name)?
        .strip_prefix(".g")?
        .strip_suffix(&format!(".map.{SNAPSHOT_EXT}"))?
        .parse()
        .ok()
}

/// Parses the epoch out of a replaced single-snapshot file name
/// (`<name>.e<epoch>.p2hs`); `None` for the initial `<name>.p2hs` (epoch 0).
fn single_epoch(file: &str, name: &str) -> Option<u64> {
    file.strip_prefix(name)?
        .strip_prefix(".e")?
        .strip_suffix(&format!(".{SNAPSHOT_EXT}"))?
        .parse()
        .ok()
}

/// Decodes a snapshot source into whichever index kind its header declares.
pub(crate) fn decode_any_src(src: SnapshotSource<'_>) -> StoreResult<LoadedIndex> {
    Ok(match SnapshotReader::new(src.bytes())?.kind {
        IndexKind::LinearScan => LoadedIndex::LinearScan(LinearScan::decode_snapshot_src(src)?),
        IndexKind::BallTree => LoadedIndex::BallTree(BallTree::decode_snapshot_src(src)?),
        IndexKind::BcTree => LoadedIndex::BcTree(BcTree::decode_snapshot_src(src)?),
        IndexKind::Nh => LoadedIndex::Nh(NhIndex::decode_snapshot_src(src)?),
        IndexKind::Fh => LoadedIndex::Fh(FhIndex::decode_snapshot_src(src)?),
        IndexKind::ShardMap => return Err(StoreError::NotAnIndex(IndexKind::ShardMap)),
        IndexKind::LiveIds => return Err(StoreError::NotAnIndex(IndexKind::LiveIds)),
    })
}

/// Decodes a snapshot buffer into whichever index kind its header declares (the
/// copying path of [`decode_any_src`]).
#[cfg(test)]
fn decode_any(bytes: &[u8]) -> StoreResult<LoadedIndex> {
    decode_any_src(SnapshotSource::Bytes(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_round_trip() {
        let mut manifest = Manifest::default();
        manifest.entries.insert("ball".into(), ManifestEntry::Single("ball.p2hs".into()));
        manifest.entries.insert("scan-v2".into(), ManifestEntry::Single("scan-v2.p2hs".into()));
        manifest.entries.insert(
            "sharded".into(),
            ManifestEntry::Group {
                map_file: "sharded.g3.map.p2hs".into(),
                shard_files: vec!["sharded.g3.s0.p2hs".into(), "sharded.g3.s1.p2hs".into()],
            },
        );
        let parsed = Manifest::parse(&manifest.render()).unwrap();
        assert_eq!(parsed, manifest);
    }

    #[test]
    fn sweep_grace_parsing() {
        // Pure-value parsing (no env mutation: other tests run concurrently).
        assert_eq!(parse_sweep_grace(None), SWEEP_GRACE);
        assert_eq!(parse_sweep_grace(Some("0")), std::time::Duration::ZERO);
        assert_eq!(parse_sweep_grace(Some("7200")), std::time::Duration::from_secs(7200));
        assert_eq!(parse_sweep_grace(Some(" 15 ")), std::time::Duration::from_secs(15));
        // Malformed values fall back to the default rather than sweeping eagerly.
        for bad in ["", "-3", "1.5", "fast", "1e3"] {
            assert_eq!(parse_sweep_grace(Some(bad)), SWEEP_GRACE, "`{bad}`");
        }
    }

    #[test]
    fn manifest_rejects_malformed_text() {
        assert!(matches!(
            Manifest::parse(""),
            Err(StoreError::Manifest { line: 0, .. }) | Err(StoreError::Manifest { line: 1, .. })
        ));
        assert!(matches!(
            Manifest::parse("wrong header\n"),
            Err(StoreError::Manifest { line: 1, .. })
        ));
        assert!(matches!(
            Manifest::parse("p2h-store 1\nno-tab-here\n"),
            Err(StoreError::Manifest { line: 2, .. })
        ));
        assert!(matches!(
            Manifest::parse("p2h-store 1\na\ta.p2hs\na\tb.p2hs\n"),
            Err(StoreError::Manifest { line: 3, .. })
        ));
        assert!(matches!(
            Manifest::parse("p2h-store 1\n../evil\tx.p2hs\n"),
            Err(StoreError::InvalidName(_))
        ));
        // A group line needs at least one shard file.
        assert!(matches!(
            Manifest::parse("p2h-store 1\nname\tshard-group\tname.g1.map.p2hs\n"),
            Err(StoreError::Manifest { line: 2, .. })
        ));
        // Three-plus fields without the group marker are malformed.
        assert!(matches!(
            Manifest::parse("p2h-store 1\nname\ta.p2hs\tb.p2hs\n"),
            Err(StoreError::Manifest { line: 2, .. })
        ));
    }

    #[test]
    fn manifest_rejects_traversal_in_the_file_column() {
        // A tampered file column must not be able to point the loader outside the
        // store directory (the manifest is plain text, not checksum-protected).
        for evil in ["../../etc/passwd", "/etc/passwd", ".hidden.p2hs", "a/b.p2hs", ""] {
            let text = format!("p2h-store 1\nname\t{evil}\n");
            assert!(
                matches!(Manifest::parse(&text), Err(StoreError::Manifest { line: 2, .. })),
                "file column `{evil}` must be rejected"
            );
            let group = format!("p2h-store 1\nname\tshard-group\t{evil}\tname.g1.s0.p2hs\n");
            assert!(
                matches!(Manifest::parse(&group), Err(StoreError::Manifest { line: 2, .. })),
                "group map column `{evil}` must be rejected"
            );
            let group = format!("p2h-store 1\nname\tshard-group\tname.g1.map.p2hs\t{evil}\n");
            assert!(
                matches!(Manifest::parse(&group), Err(StoreError::Manifest { line: 2, .. })),
                "group shard column `{evil}` must be rejected"
            );
        }
        // The longest name the store itself writes still round-trips.
        let long = "n".repeat(100);
        let text = format!("p2h-store 1\n{long}\t{long}.{SNAPSHOT_EXT}\n");
        assert!(Manifest::parse(&text).is_ok());
        let group = format!(
            "p2h-store 1\n{long}\tshard-group\t{long}.g1.map.{SNAPSHOT_EXT}\t{long}.g1.s0.{SNAPSHOT_EXT}\n"
        );
        assert!(Manifest::parse(&group).is_ok());
    }

    #[test]
    fn name_validation() {
        for good in ["a", "ball-tree_v2.1", "X", &"n".repeat(100)] {
            assert!(validate_name(good).is_ok(), "{good}");
        }
        for bad in ["", ".hidden", "a/b", "a\\b", "a b", "ü", &"n".repeat(101)] {
            assert!(matches!(validate_name(bad), Err(StoreError::InvalidName(_))), "{bad}");
        }
    }

    #[test]
    fn group_epoch_parsing() {
        assert_eq!(group_epoch("idx.g1.map.p2hs", "idx"), Some(1));
        assert_eq!(group_epoch("idx.g42.map.p2hs", "idx"), Some(42));
        assert_eq!(group_epoch("idx.g1.s0.p2hs", "idx"), None);
        assert_eq!(group_epoch("other.g1.map.p2hs", "idx"), None);
        assert_eq!(group_epoch("idx.gx.map.p2hs", "idx"), None);
    }

    #[test]
    fn single_epoch_parsing() {
        assert_eq!(single_epoch("idx.p2hs", "idx"), None);
        assert_eq!(single_epoch("idx.e1.p2hs", "idx"), Some(1));
        assert_eq!(single_epoch("idx.e37.p2hs", "idx"), Some(37));
        assert_eq!(single_epoch("other.e1.p2hs", "idx"), None);
        assert_eq!(single_epoch("idx.ex.p2hs", "idx"), None);
    }

    #[test]
    fn hostile_declared_total_is_an_error_not_an_allocation() {
        use p2h_core::{LinearScan, PointSet};
        // A map file whose GMET declares an absurd total_count passes every checksum
        // (the writer recomputes CRCs over whatever it is given) but must be rejected
        // by the cross-file consistency check *before* any `total_count`-sized
        // allocation happens.
        let meta = ShardGroupMeta {
            partitioner_tag: 0,
            requested_shards: 1,
            total_count: 1usize << 45,
            dim: 3,
            build_seed: 0,
        };
        let id_maps: Vec<VecBuf<u32>> = vec![vec![0u32, 1].into()];
        let bytes = encode_shard_map(&meta, &id_maps);
        let (decoded_meta, decoded_maps) = decode_shard_map(SnapshotSource::Bytes(&bytes)).unwrap();
        assert_eq!(decoded_meta.total_count, 1usize << 45);
        let shard = LoadedIndex::LinearScan(LinearScan::new(
            PointSet::from_rows(&[vec![0.0, 0.0, 1.0], vec![1.0, 1.0, 1.0]]).unwrap(),
        ));
        assert!(matches!(
            validate_group(&decoded_meta, &decoded_maps, &[shard]),
            Err(StoreError::GroupInconsistent { .. })
        ));
    }

    #[test]
    fn shard_map_round_trip_and_corruption() {
        let meta = ShardGroupMeta {
            partitioner_tag: 1,
            requested_shards: 3,
            total_count: 5,
            dim: 4,
            build_seed: 9,
        };
        let id_maps: Vec<VecBuf<u32>> = vec![vec![0u32, 2].into(), vec![1u32, 3, 4].into()];
        let bytes = encode_shard_map(&meta, &id_maps);
        let (meta2, maps2) = decode_shard_map(SnapshotSource::Bytes(&bytes)).unwrap();
        assert_eq!(meta2, meta);
        assert_eq!(maps2, id_maps);

        // Every truncation boundary is a typed error, never a panic.
        for len in 0..bytes.len() {
            assert!(
                decode_shard_map(SnapshotSource::Bytes(&bytes[..len])).is_err(),
                "truncation at {len}"
            );
        }
        // A flipped payload bit is caught by the section checksum (flip inside the
        // GMET payload; the file tail may be zero padding).
        let mut corrupt = bytes.clone();
        let payload_start = crate::format::HEADER_LEN + crate::format::SECTION_HEADER_LEN;
        corrupt[payload_start] ^= 0x01;
        assert!(matches!(
            decode_shard_map(SnapshotSource::Bytes(&corrupt)),
            Err(StoreError::ChecksumMismatch { .. })
        ));
        // A map file is not a standalone index.
        assert!(matches!(decode_any(&bytes), Err(StoreError::NotAnIndex(IndexKind::ShardMap))));
    }
}
