//! CRC32 (IEEE 802.3, the `zlib`/`png` polynomial) used to checksum snapshot sections.
//!
//! The table is built at compile time; the byte-at-a-time loop is plenty for snapshot
//! sizes (loads are dominated by the `f32` payload copies, not the checksum).

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const TABLE: [u32; 256] = build_table();

/// Computes the CRC32 (IEEE) checksum of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = u32::MAX;
    for &byte in data {
        c = TABLE[((c ^ byte as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ u32::MAX
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer_vectors() {
        // The standard CRC32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"snapshot payload bytes".to_vec();
        let reference = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), reference, "flip at byte {i} bit {bit}");
            }
        }
    }
}
