//! Memory-mapped snapshot regions: the zero-copy backing behind `LoadMode::Mmap`.
//!
//! **This module is the only place in the workspace that contains `unsafe` code for
//! the storage layer** (the crate root carries `#![deny(unsafe_code)]`; this module is
//! exempted). Two operations need it, both confined here:
//!
//! 1. the raw `mmap(2)`/`munmap(2)` externs (no `libc` crate dependency — the build
//!    container is offline, and `std` already links the C library these symbols live
//!    in), and
//! 2. the `[u8] → [f32]`/`[u8] → [u32]` reinterpretation that serves typed slices to
//!    [`p2h_core::VecBuf`] through the safe [`BufBacking`] trait.
//!
//! Soundness relies on three facts, each enforced before a cast happens:
//!
//! * mmap bases are page-aligned, so 8-byte *file* alignment (guaranteed by format v2
//!   and validated by the reader) is 8-byte *address* alignment;
//! * every window is bounds- and alignment-checked (`VecBuf::mapped` rejects hostile
//!   offsets with typed errors; the accessors here re-assert the contract);
//! * the mapping is `PROT_READ` + `MAP_PRIVATE` and the store never mutates a live
//!   snapshot file in place (replacements are staged under fresh epoch names and
//!   switched via the manifest), so the viewed bytes are immutable for the mapping's
//!   lifetime. Truncating a mapped file externally is undefined behavior at the OS
//!   level (`SIGBUS`), as with any mmap consumer; do not modify store directories
//!   out-of-band while a process is serving from them.
//!
//! `Scalar` reads assume little-endian storage (the format is little-endian); on a
//! big-endian host the store silently falls back to the copying loader, which decodes
//! byte-by-byte.

use std::fmt;
use std::fs::File;
use std::path::Path;
use std::sync::Arc;

use p2h_core::{BufBacking, Scalar};

use crate::format::{io_error, StoreResult};

/// How a `Store` (or a standalone snapshot load) materializes array payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LoadMode {
    /// Read the file and copy every array into fresh heap allocations (the default;
    /// works for every container version).
    #[default]
    Copy,
    /// Map the file with `mmap(2)` and serve the arrays as zero-copy views into the
    /// mapping. Needs a v2 snapshot (v1 files silently demote to `Copy`); answers are
    /// bit-identical either way. Cold-start cost drops to one checksum pass, peak RSS
    /// no longer doubles, and the page cache shares the bytes between every process
    /// mapping the same file.
    Mmap,
}

impl LoadMode {
    /// Resolves the mode from the `P2H_STORE_MMAP` environment variable (`1`/`true`
    /// selects [`LoadMode::Mmap`]), defaulting to [`LoadMode::Copy`]. This is how CI
    /// runs the whole test suite under both loaders.
    pub fn from_env() -> Self {
        match std::env::var("P2H_STORE_MMAP") {
            Ok(value) if value == "1" || value.eq_ignore_ascii_case("true") => LoadMode::Mmap,
            _ => LoadMode::Copy,
        }
    }
}

/// A file's bytes read under a [`LoadMode`]: the owner behind a
/// [`crate::format::SnapshotSource`].
#[derive(Debug)]
pub(crate) enum SourceOwner {
    Bytes(Vec<u8>),
    Mapped(Arc<MmapRegion>),
}

impl SourceOwner {
    /// Reads `path` according to `mode`. Big-endian hosts always copy: the zero-copy
    /// typed views assume little-endian storage.
    pub(crate) fn read(path: &Path, mode: LoadMode) -> StoreResult<Self> {
        let mode = if cfg!(target_endian = "big") { LoadMode::Copy } else { mode };
        let start = std::time::Instant::now();
        let owner = match mode {
            LoadMode::Copy => SourceOwner::Bytes(
                crate::retry::retry_interrupted("store.read", || std::fs::read(path))
                    .map_err(|e| io_error(path, e))?,
            ),
            LoadMode::Mmap => SourceOwner::Mapped(MmapRegion::map_file(path)?),
        };
        crate::metrics::record_read(mode, start.elapsed().as_nanos() as u64, owner.byte_len());
        Ok(owner)
    }

    /// The number of bytes this owner materialized (owned or mapped).
    fn byte_len(&self) -> usize {
        match self {
            SourceOwner::Bytes(bytes) => bytes.len(),
            SourceOwner::Mapped(region) => region.len(),
        }
    }

    /// Borrows this owner as a decode source.
    pub(crate) fn as_src(&self) -> crate::format::SnapshotSource<'_> {
        match self {
            SourceOwner::Bytes(bytes) => crate::format::SnapshotSource::Bytes(bytes),
            SourceOwner::Mapped(region) => crate::format::SnapshotSource::Mapped(region),
        }
    }
}

/// An immutable, shared byte region backing zero-copy snapshot loads — one region per
/// snapshot file (shard groups map one region per epoch file).
///
/// On Unix hosts the region is a real `mmap(2)` mapping, unmapped on drop. Elsewhere
/// (or if the syscall fails) it degrades to a heap buffer read from the file — same
/// API, same results, no mapping.
pub struct MmapRegion {
    base: Base,
}

enum Base {
    #[cfg(unix)]
    Mapped {
        ptr: *const u8,
        len: usize,
    },
    Owned(AlignedBytes),
}

/// Heap bytes stored in a `u64` allocation so the base pointer is 8-aligned — the same
/// guarantee a page-aligned mmap base gives, which the typed accessors rely on.
struct AlignedBytes {
    words: Vec<u64>,
    len: usize,
}

impl AlignedBytes {
    fn new(bytes: &[u8]) -> Self {
        let mut words = vec![0u64; bytes.len().div_ceil(8)];
        for (word, chunk) in words.iter_mut().zip(bytes.chunks(8)) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            *word = u64::from_ne_bytes(buf);
        }
        Self { words, len: bytes.len() }
    }

    fn as_bytes(&self) -> &[u8] {
        // SAFETY: the allocation holds at least `len` initialized bytes (zero-padded
        // to the word boundary), is immutable, and outlives the borrow.
        unsafe { std::slice::from_raw_parts(self.words.as_ptr().cast::<u8>(), self.len) }
    }
}

// SAFETY: the region is read-only for its entire lifetime (PROT_READ mapping or an
// owned buffer nothing mutates), so shared references may cross threads freely.
unsafe impl Send for MmapRegion {}
unsafe impl Sync for MmapRegion {}

#[cfg(unix)]
mod sys {
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

impl MmapRegion {
    /// Maps `path` read-only. A zero-length file (or a host/syscall that cannot map)
    /// yields a heap-backed region with identical behavior.
    pub fn map_file(path: &Path) -> StoreResult<Arc<Self>> {
        let file = crate::retry::retry_interrupted("store.read", || File::open(path))
            .map_err(|e| io_error(path, e))?;
        let len = file.metadata().map_err(|e| io_error(path, e))?.len();
        let len = usize::try_from(len).map_err(|_| {
            io_error(path, std::io::Error::other("file larger than the address space"))
        })?;
        #[cfg(unix)]
        if len > 0 {
            use std::os::fd::AsRawFd;
            // SAFETY: fd is a valid open file descriptor for the whole call; we map
            // the entire file read-only/private at an OS-chosen address. The fd may be
            // closed right after — the mapping keeps its own reference.
            let ptr = unsafe {
                sys::mmap(
                    std::ptr::null_mut(),
                    len,
                    sys::PROT_READ,
                    sys::MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize != -1 && !ptr.is_null() {
                return Ok(Arc::new(Self { base: Base::Mapped { ptr: ptr as *const u8, len } }));
            }
        }
        // Fallback: read into an owned aligned buffer (empty files, exotic
        // filesystems, non-Unix hosts). Behaviorally identical, just not shared with
        // other processes.
        let bytes = crate::retry::retry_interrupted("store.read", || std::fs::read(path))
            .map_err(|e| io_error(path, e))?;
        Ok(Arc::new(Self { base: Base::Owned(AlignedBytes::new(&bytes)) }))
    }

    /// Wraps an in-memory buffer as a region — for tests and tooling that exercise the
    /// zero-copy decode paths without touching the filesystem. The bytes are copied
    /// into an 8-aligned allocation so the same alignment guarantees as a real mapping
    /// hold.
    pub fn from_bytes(bytes: Vec<u8>) -> Arc<Self> {
        Arc::new(Self { base: Base::Owned(AlignedBytes::new(&bytes)) })
    }

    /// The mapped (or owned) bytes.
    pub fn as_bytes(&self) -> &[u8] {
        match &self.base {
            #[cfg(unix)]
            // SAFETY: ptr/len describe a live PROT_READ mapping owned by `self`
            // (unmapped only on drop), so the slice is valid for `self`'s lifetime.
            Base::Mapped { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            Base::Owned(bytes) => bytes.as_bytes(),
        }
    }

    /// Region length in bytes.
    pub fn len(&self) -> usize {
        match &self.base {
            #[cfg(unix)]
            Base::Mapped { len, .. } => *len,
            Base::Owned(bytes) => bytes.len,
        }
    }

    /// Whether the region is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serves a typed 4-byte-element view. The caller contract (enforced with typed
    /// errors by `VecBuf::mapped` before any call lands here) is re-asserted: panics
    /// on a violating offset/len, which would indicate a bug, not hostile input.
    fn typed<T: Copy>(&self, offset: usize, len: usize) -> &[T] {
        let bytes = self.as_bytes();
        let elem = std::mem::size_of::<T>();
        let end = offset.checked_add(len * elem).expect("typed window overflows");
        assert!(end <= bytes.len(), "typed window {offset}..{end} exceeds region");
        let ptr = bytes[offset..].as_ptr();
        assert_eq!(ptr as usize % std::mem::align_of::<T>(), 0, "typed window misaligned");
        // SAFETY: the pointer is in-bounds for `len * size_of::<T>()` bytes (asserted
        // above), aligned (asserted above), and T is a plain-old-data 4-byte type
        // (f32/u32) for which any bit pattern is valid; the region is immutable and
        // outlives the returned borrow.
        unsafe { std::slice::from_raw_parts(ptr.cast::<T>(), len) }
    }
}

impl BufBacking for MmapRegion {
    fn len_bytes(&self) -> usize {
        self.len()
    }

    fn f32s(&self, offset: usize, len: usize) -> &[Scalar] {
        self.typed(offset, len)
    }

    fn u32s(&self, offset: usize, len: usize) -> &[u32] {
        self.typed(offset, len)
    }
}

impl Drop for MmapRegion {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Base::Mapped { ptr, len } = self.base {
            // SAFETY: ptr/len came from a successful mmap owned exclusively by this
            // region; nothing can reference the mapping after drop (as_bytes borrows
            // end with `self`).
            unsafe {
                sys::munmap(ptr as *mut std::os::raw::c_void, len);
            }
        }
    }
}

impl fmt::Debug for MmapRegion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match &self.base {
            #[cfg(unix)]
            Base::Mapped { .. } => "mmap",
            Base::Owned(_) => "heap",
        };
        write!(f, "MmapRegion({kind}, {} bytes)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_a_real_file_and_serves_typed_views() {
        let dir = std::env::temp_dir().join(format!("p2h-mmap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("region.bin");
        let mut bytes = Vec::new();
        for v in [1.0f32, -2.5, 3.25] {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        for v in [7u32, 9] {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        std::fs::write(&path, &bytes).unwrap();

        let region = MmapRegion::map_file(&path).unwrap();
        assert_eq!(region.len(), 20);
        assert!(!region.is_empty());
        assert_eq!(region.as_bytes(), &bytes[..]);
        assert_eq!(region.f32s(0, 3), &[1.0, -2.5, 3.25]);
        assert_eq!(region.u32s(12, 2), &[7, 9]);
        drop(region);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_files_and_heap_regions_work() {
        let dir = std::env::temp_dir().join(format!("p2h-mmap-empty-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.bin");
        std::fs::write(&path, b"").unwrap();
        let region = MmapRegion::map_file(&path).unwrap();
        assert!(region.is_empty());
        assert_eq!(region.len_bytes(), 0);

        let heap = MmapRegion::from_bytes(vec![0, 0, 128, 63]); // 1.0f32 LE
        assert_eq!(heap.f32s(0, 1), &[1.0]);
        assert!(format!("{heap:?}").contains("4 bytes"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_mode_env_parsing() {
        // Uses the parsing logic without mutating the process environment (other
        // tests run concurrently): only the documented truthy values map to Mmap.
        assert_eq!(LoadMode::default(), LoadMode::Copy);
        // from_env reflects whatever the harness set; both outcomes are legal here.
        let _ = LoadMode::from_env();
    }
}
