//! CRC-framed write-ahead log segments for the live (mutable) index tier.
//!
//! A WAL segment is the durability record of one memtable epoch: every insert or
//! delete accepted by a `p2h-live` index is framed, appended, and fsynced **before**
//! the operation is acknowledged, so a crash at any instant loses no acknowledged
//! write. See `docs/SNAPSHOT_FORMAT.md` for the byte-level spec.
//!
//! ```text
//! header   magic "P2HW" · version u16 · reserved u16 (zero)
//!          · epoch u64 · augmented dim u64 · first id u32 · reserved u32   (32 bytes)
//! frame    payload length u32 · CRC32(payload) u32 · payload               (repeats)
//! payload  op u8 = 1 (insert) · id u32 · point f32 × dim
//!          op u8 = 2 (delete) · id u32
//! ```
//!
//! All integers are little-endian. Frames are *not* padded: the segment is an
//! append-only stream, never memory-mapped.
//!
//! ## Recovery rules
//!
//! Replay distinguishes a **torn tail** from **corruption**:
//!
//! * A final frame that extends past end-of-file (the crash hit mid-append) is
//!   silently dropped — by construction it was never acknowledged, because the fsync
//!   that would have acknowledged it never completed. Likewise a final,
//!   fully-contained frame whose CRC fails (the filesystem committed the frame's
//!   length before all of its data).
//! * Anything else — a mid-segment CRC failure, a payload whose length disagrees
//!   with its op code, an unknown op, a non-sequential insert id — is a typed
//!   [`StoreError::WalCorrupt`]: no valid writer history produces it, so replay
//!   refuses rather than serve wrong answers.
//!
//! Appending after recovery truncates the torn tail first, so the stream stays a
//! prefix of valid frames at all times.

use std::fs::{self, File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use p2h_core::Scalar;

use crate::crc32::crc32;
use crate::format::{io_error, StoreError, StoreResult};
use crate::retry::retry_interrupted;

/// Magic bytes opening every WAL segment.
pub const WAL_MAGIC: [u8; 4] = *b"P2HW";

/// The current WAL segment format version.
pub const WAL_VERSION: u16 = 1;

/// Byte length of the segment header.
pub const WAL_HEADER_LEN: usize = 32;

/// Byte length of a frame header (payload length + CRC32).
pub const WAL_FRAME_HEADER_LEN: usize = 8;

const OP_INSERT: u8 = 1;
const OP_DELETE: u8 = 2;

/// One logged operation, in replay order.
#[derive(Debug, Clone, PartialEq)]
pub enum WalOp {
    /// A point insert: the assigned global id and the augmented point
    /// (`dim` scalars, last coordinate 1).
    Insert {
        /// Global id assigned to the point (sequential within the segment).
        id: u32,
        /// The augmented point, `dim` scalars.
        point: Vec<Scalar>,
    },
    /// A point delete by global id.
    Delete {
        /// Global id of the deleted point.
        id: u32,
    },
}

/// The fixed header of a WAL segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalHeader {
    /// Store epoch this segment belongs to.
    pub epoch: u64,
    /// Augmented point dimensionality of every insert in the segment.
    pub dim: usize,
    /// The id the first insert in this segment must carry (the live index's
    /// `next_id` at the moment the segment was opened).
    pub first_id: u32,
}

impl WalHeader {
    fn encode(&self) -> [u8; WAL_HEADER_LEN] {
        let mut buf = [0u8; WAL_HEADER_LEN];
        buf[0..4].copy_from_slice(&WAL_MAGIC);
        buf[4..6].copy_from_slice(&WAL_VERSION.to_le_bytes());
        // bytes 6..8 reserved (zero)
        buf[8..16].copy_from_slice(&self.epoch.to_le_bytes());
        buf[16..24].copy_from_slice(&(self.dim as u64).to_le_bytes());
        buf[24..28].copy_from_slice(&self.first_id.to_le_bytes());
        // bytes 28..32 reserved (zero)
        buf
    }

    fn decode(bytes: &[u8]) -> StoreResult<Self> {
        if bytes.len() < WAL_HEADER_LEN {
            return Err(StoreError::WalCorrupt { message: "truncated segment header".into() });
        }
        if bytes[0..4] != WAL_MAGIC {
            return Err(StoreError::WalCorrupt {
                message: format!("bad magic {:?}: not a P2HW segment", &bytes[0..4]),
            });
        }
        let version = u16::from_le_bytes([bytes[4], bytes[5]]);
        if version != WAL_VERSION {
            return Err(StoreError::WalCorrupt {
                message: format!("unsupported WAL version {version} (this build reads 1)"),
            });
        }
        let epoch = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
        let dim64 = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes"));
        let dim = usize::try_from(dim64)
            .ok()
            .filter(|&d| d >= 2 && d <= u32::MAX as usize)
            .ok_or_else(|| StoreError::WalCorrupt {
                message: format!("implausible dimension {dim64} in segment header"),
            })?;
        let first_id = u32::from_le_bytes(bytes[24..28].try_into().expect("4 bytes"));
        Ok(Self { epoch, dim, first_id })
    }
}

/// The result of replaying one WAL segment.
#[derive(Debug)]
pub struct WalReplay {
    /// The segment header.
    pub header: WalHeader,
    /// The valid operations, in append order.
    pub ops: Vec<WalOp>,
    /// Byte length of the valid prefix (header + complete frames). Appending after
    /// recovery truncates the file to this length first.
    pub valid_len: u64,
    /// Whether a torn tail (an unacknowledged partial final frame) was dropped.
    pub torn_tail: bool,
}

/// Encodes one operation into a frame payload.
fn encode_op(payload: &mut Vec<u8>, op: &WalOp) {
    match op {
        WalOp::Insert { id, point } => {
            payload.push(OP_INSERT);
            payload.extend_from_slice(&id.to_le_bytes());
            payload.reserve(point.len() * 4);
            for &v in point {
                payload.extend_from_slice(&v.to_le_bytes());
            }
        }
        WalOp::Delete { id } => {
            payload.push(OP_DELETE);
            payload.extend_from_slice(&id.to_le_bytes());
        }
    }
}

/// Decodes one checksum-verified frame payload. `next_id` is the id the next insert
/// must carry; it is advanced on success.
fn decode_op(payload: &[u8], dim: usize, next_id: &mut u32) -> StoreResult<WalOp> {
    let corrupt = |message: String| StoreError::WalCorrupt { message };
    let Some((&op, rest)) = payload.split_first() else {
        return Err(corrupt("empty frame payload".into()));
    };
    match op {
        OP_INSERT => {
            let expected = 4 + dim * 4;
            if rest.len() != expected {
                return Err(corrupt(format!(
                    "insert frame holds {} payload bytes after the op byte, dim {dim} implies {expected}",
                    rest.len()
                )));
            }
            let id = u32::from_le_bytes(rest[0..4].try_into().expect("4 bytes"));
            if id != *next_id {
                return Err(corrupt(format!(
                    "insert id {id} breaks the sequential id stream (expected {next_id})"
                )));
            }
            *next_id =
                next_id.checked_add(1).ok_or_else(|| corrupt("id space exhausted".into()))?;
            let point = rest[4..]
                .chunks_exact(4)
                .map(|c| Scalar::from_le_bytes(c.try_into().expect("4 bytes")))
                .collect();
            Ok(WalOp::Insert { id, point })
        }
        OP_DELETE => {
            if rest.len() != 4 {
                return Err(corrupt(format!(
                    "delete frame holds {} payload bytes after the op byte, expected 4",
                    rest.len()
                )));
            }
            Ok(WalOp::Delete { id: u32::from_le_bytes(rest.try_into().expect("4 bytes")) })
        }
        other => Err(corrupt(format!("unknown op code {other}"))),
    }
}

/// Reads and replays a WAL segment, applying the recovery rules in the module
/// documentation.
///
/// # Errors
///
/// [`StoreError::Io`] if the file cannot be read; [`StoreError::WalCorrupt`] for any
/// malformation beyond a torn tail. Never panics on hostile bytes.
pub fn replay_wal(path: &Path) -> StoreResult<WalReplay> {
    let bytes =
        retry_interrupted("live.wal.read", || fs::read(path)).map_err(|e| io_error(path, e))?;
    let header = WalHeader::decode(&bytes)?;
    let mut ops = Vec::new();
    let mut next_id = header.first_id;
    let mut pos = WAL_HEADER_LEN;
    loop {
        let remaining = bytes.len() - pos;
        if remaining == 0 {
            return Ok(WalReplay { header, ops, valid_len: pos as u64, torn_tail: false });
        }
        if remaining < WAL_FRAME_HEADER_LEN {
            // Crash mid-frame-header: necessarily the unacknowledged final append.
            return Ok(WalReplay { header, ops, valid_len: pos as u64, torn_tail: true });
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let stored_crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        if len > remaining - WAL_FRAME_HEADER_LEN {
            // The frame extends past end-of-file: a torn final append. (A hostile
            // length lands here too — it cannot smuggle bytes past the CRC below.)
            return Ok(WalReplay { header, ops, valid_len: pos as u64, torn_tail: true });
        }
        let payload = &bytes[pos + WAL_FRAME_HEADER_LEN..pos + WAL_FRAME_HEADER_LEN + len];
        let frame_end = pos + WAL_FRAME_HEADER_LEN + len;
        if crc32(payload) != stored_crc {
            if frame_end == bytes.len() {
                // Final frame, fully contained, bad CRC: the filesystem committed the
                // frame length before all of its data. Unacknowledged — drop it.
                return Ok(WalReplay { header, ops, valid_len: pos as u64, torn_tail: true });
            }
            return Err(StoreError::WalCorrupt {
                message: format!("CRC mismatch in frame at byte {pos} with frames following"),
            });
        }
        ops.push(decode_op(payload, header.dim, &mut next_id)?);
        pos = frame_end;
    }
}

/// An open WAL segment accepting fsync-batched appends.
///
/// Every [`WalWriter::append`] call writes all of its frames with one `write` and one
/// `fdatasync`; when it returns `Ok`, the batch is durable. The I/O goes through the
/// `live.wal.append` and `live.wal.fsync` fault points (see [`crate::retry`]), so the
/// chaos harness can inject `EINTR`, stalls, and hard failures exactly where a real
/// kernel would produce them.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    header: WalHeader,
    len: u64,
    /// Set when a failed append could not be rolled back: the on-disk suffix past
    /// `len` is unknown, so further appends are refused (reopen via replay instead).
    poisoned: bool,
}

impl WalWriter {
    /// Creates a new segment at `path`, writes its header, and makes the file (and,
    /// on Unix, its directory entry) durable before returning. Fails if the file
    /// already exists — segments are never silently clobbered.
    pub fn create(path: &Path, header: WalHeader) -> StoreResult<Self> {
        if header.dim < 2 {
            return Err(StoreError::Invalid(p2h_core::Error::InvalidDimension(header.dim)));
        }
        let mut file = retry_interrupted("live.wal.append", || {
            OpenOptions::new().write(true).create_new(true).open(path)
        })
        .map_err(|e| io_error(path, e))?;
        retry_interrupted("live.wal.append", || file.write_all(&header.encode()))
            .map_err(|e| io_error(path, e))?;
        retry_interrupted("live.wal.fsync", || file.sync_all()).map_err(|e| io_error(path, e))?;
        if let Some(dir) = path.parent() {
            fsync_dir(dir)?;
        }
        Ok(Self {
            file,
            path: path.to_path_buf(),
            header,
            len: WAL_HEADER_LEN as u64,
            poisoned: false,
        })
    }

    /// Reopens a replayed segment for appending, truncating any torn tail so the file
    /// is exactly the valid prefix again.
    pub fn reopen(path: &Path, replay: &WalReplay) -> StoreResult<Self> {
        let mut file =
            retry_interrupted("live.wal.append", || OpenOptions::new().write(true).open(path))
                .map_err(|e| io_error(path, e))?;
        retry_interrupted("live.wal.append", || file.set_len(replay.valid_len))
            .map_err(|e| io_error(path, e))?;
        if replay.torn_tail {
            // Make the truncation durable before new frames land where the torn
            // bytes were — a crash must never resurrect half of a dropped frame.
            retry_interrupted("live.wal.fsync", || file.sync_all())
                .map_err(|e| io_error(path, e))?;
        }
        retry_interrupted("live.wal.append", || {
            file.seek(SeekFrom::Start(replay.valid_len)).map(|_| ())
        })
        .map_err(|e| io_error(path, e))?;
        Ok(Self {
            file,
            path: path.to_path_buf(),
            header: replay.header,
            len: replay.valid_len,
            poisoned: false,
        })
    }

    /// The segment header.
    pub fn header(&self) -> &WalHeader {
        &self.header
    }

    /// Current durable segment length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the segment holds no frames yet.
    pub fn is_empty(&self) -> bool {
        self.len <= WAL_HEADER_LEN as u64
    }

    /// Appends a batch of operations as one write followed by one `fdatasync`.
    /// Returns the number of bytes appended. When this returns `Ok`, every operation
    /// in the batch is durable (the acknowledgement point of the live index).
    ///
    /// Insert points must carry exactly `dim` scalars; violating that is a caller bug
    /// reported as a typed error before anything is written.
    pub fn append(&mut self, ops: &[WalOp]) -> StoreResult<u64> {
        if self.poisoned {
            return Err(io_error(
                &self.path,
                std::io::Error::other(
                    "WAL writer poisoned by an unrolled-back append failure; reopen the segment",
                ),
            ));
        }
        let mut batch = Vec::new();
        let mut payload = Vec::new();
        for op in ops {
            if let WalOp::Insert { point, .. } = op {
                if point.len() != self.header.dim {
                    return Err(StoreError::Invalid(p2h_core::Error::DimensionMismatch {
                        expected: self.header.dim,
                        actual: point.len(),
                    }));
                }
            }
            payload.clear();
            encode_op(&mut payload, op);
            batch.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            batch.extend_from_slice(&crc32(&payload).to_le_bytes());
            batch.extend_from_slice(&payload);
        }
        if batch.is_empty() {
            return Ok(0);
        }
        let written = retry_interrupted("live.wal.append", || self.file.write_all(&batch))
            .and_then(|()| retry_interrupted("live.wal.fsync", || self.file.sync_data()));
        if let Err(e) = written {
            // Roll the partial append back: without this, a caller retrying the same
            // (unacknowledged) batch would append duplicate insert ids after the
            // half-written frames, which replay rightly refuses as corruption.
            let rolled = self
                .file
                .set_len(self.len)
                .and_then(|()| self.file.seek(SeekFrom::Start(self.len)).map(|_| ()));
            if rolled.is_err() {
                self.poisoned = true;
            }
            return Err(io_error(&self.path, e));
        }
        self.len += batch.len() as u64;
        Ok(batch.len() as u64)
    }
}

/// Fsyncs a directory so recent renames and file creations within it are durable.
/// A no-op on platforms where directories cannot be opened for syncing.
pub(crate) fn fsync_dir(dir: &Path) -> StoreResult<()> {
    #[cfg(unix)]
    {
        let handle = retry_interrupted("live.wal.fsync", || File::open(dir))
            .map_err(|e| io_error(dir, e))?;
        retry_interrupted("live.wal.fsync", || handle.sync_all()).map_err(|e| io_error(dir, e))?;
    }
    #[cfg(not(unix))]
    let _ = dir;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("p2h-wal-{tag}-{}.wal", std::process::id()))
    }

    fn sample_ops(dim: usize, first_id: u32) -> Vec<WalOp> {
        vec![
            WalOp::Insert { id: first_id, point: vec![0.5; dim] },
            WalOp::Insert { id: first_id + 1, point: vec![-1.25; dim] },
            WalOp::Delete { id: first_id },
            WalOp::Insert { id: first_id + 2, point: vec![2.0; dim] },
        ]
    }

    #[test]
    fn round_trip_and_reopen() {
        let path = temp_path("round-trip");
        let _ = fs::remove_file(&path);
        let header = WalHeader { epoch: 3, dim: 4, first_id: 100 };
        let mut writer = WalWriter::create(&path, header).unwrap();
        let ops = sample_ops(4, 100);
        writer.append(&ops[..2]).unwrap();
        writer.append(&ops[2..]).unwrap();
        let logged_len = writer.len();
        drop(writer);

        let replay = replay_wal(&path).unwrap();
        assert_eq!(replay.header, header);
        assert_eq!(replay.ops, ops);
        assert_eq!(replay.valid_len, logged_len);
        assert!(!replay.torn_tail);

        // Reopen and append more; the stream keeps replaying cleanly.
        let mut writer = WalWriter::reopen(&path, &replay).unwrap();
        writer.append(&[WalOp::Delete { id: 101 }]).unwrap();
        let replay = replay_wal(&path).unwrap();
        assert_eq!(replay.ops.len(), 5);
        assert_eq!(replay.ops[4], WalOp::Delete { id: 101 });
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn create_refuses_existing_segment() {
        let path = temp_path("no-clobber");
        let _ = fs::remove_file(&path);
        let header = WalHeader { epoch: 0, dim: 3, first_id: 0 };
        WalWriter::create(&path, header).unwrap();
        assert!(matches!(WalWriter::create(&path, header), Err(StoreError::Io { .. })));
        let _ = fs::remove_file(&path);
    }

    /// Every truncation point of a valid segment either replays a prefix of the ops
    /// (torn tail) or fails the header check — never a panic, never a wrong op.
    #[test]
    fn truncation_sweep_yields_prefixes() {
        let path = temp_path("truncate");
        let _ = fs::remove_file(&path);
        let header = WalHeader { epoch: 1, dim: 3, first_id: 7 };
        let mut writer = WalWriter::create(&path, header).unwrap();
        let ops = sample_ops(3, 7);
        writer.append(&ops).unwrap();
        drop(writer);
        let full = fs::read(&path).unwrap();

        let cut_path = temp_path("truncate-cut");
        for cut in 0..full.len() {
            fs::write(&cut_path, &full[..cut]).unwrap();
            match replay_wal(&cut_path) {
                Ok(replay) => {
                    // A cut at a frame boundary is a valid shorter segment
                    // (torn_tail = false); anywhere else drops the partial frame.
                    assert!(cut >= WAL_HEADER_LEN);
                    assert_eq!(replay.ops, ops[..replay.ops.len()]);
                    assert!(replay.valid_len as usize <= cut);
                    assert_eq!(replay.torn_tail, replay.valid_len as usize != cut);
                }
                Err(StoreError::WalCorrupt { .. }) => assert!(cut < WAL_HEADER_LEN),
                Err(other) => panic!("unexpected error at cut {cut}: {other}"),
            }
        }
        let _ = fs::remove_file(&path);
        let _ = fs::remove_file(&cut_path);
    }

    /// A flipped bit in any frame byte is caught: mid-segment flips are typed
    /// corruption, final-frame payload flips are dropped as a torn tail, and no flip
    /// ever replays a wrong operation.
    #[test]
    fn bit_flip_sweep_never_replays_wrong_ops() {
        let path = temp_path("bitflip");
        let _ = fs::remove_file(&path);
        let header = WalHeader { epoch: 2, dim: 2, first_id: 0 };
        let mut writer = WalWriter::create(&path, header).unwrap();
        let ops = sample_ops(2, 0);
        writer.append(&ops).unwrap();
        drop(writer);
        let full = fs::read(&path).unwrap();

        let flip_path = temp_path("bitflip-cut");
        for byte in WAL_HEADER_LEN..full.len() {
            let mut flipped = full.clone();
            flipped[byte] ^= 0x10;
            fs::write(&flip_path, &flipped).unwrap();
            match replay_wal(&flip_path) {
                Ok(replay) => {
                    // Whatever replays must be a prefix of the original ops: a
                    // single-bit flip cannot pass the CRC, so the only Ok outcomes
                    // are a dropped final frame or an untouched stream.
                    assert!(replay.ops.len() < ops.len() || replay.ops == ops);
                    assert_eq!(replay.ops, ops[..replay.ops.len()]);
                }
                Err(StoreError::WalCorrupt { .. }) => {}
                Err(other) => panic!("unexpected error at byte {byte}: {other}"),
            }
        }
        let _ = fs::remove_file(&path);
        let _ = fs::remove_file(&flip_path);
    }

    #[test]
    fn header_corruption_is_typed() {
        let path = temp_path("header");
        let _ = fs::remove_file(&path);
        let header = WalHeader { epoch: 0, dim: 2, first_id: 0 };
        WalWriter::create(&path, header).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        bytes[0] = b'X';
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(replay_wal(&path), Err(StoreError::WalCorrupt { .. })));

        // Implausible dimension.
        let mut bytes = WalHeader { epoch: 0, dim: 2, first_id: 0 }.encode().to_vec();
        bytes[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(replay_wal(&path), Err(StoreError::WalCorrupt { .. })));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn non_sequential_insert_is_corrupt() {
        let path = temp_path("seq");
        let _ = fs::remove_file(&path);
        let header = WalHeader { epoch: 0, dim: 2, first_id: 5 };
        let mut writer = WalWriter::create(&path, header).unwrap();
        // Bypass the live index's id assignment: log an out-of-order id directly.
        writer.append(&[WalOp::Insert { id: 9, point: vec![0.0, 1.0] }]).unwrap();
        // Trailing valid frame so the bad one is not drop-eligible as a torn tail.
        writer.append(&[WalOp::Delete { id: 0 }]).unwrap();
        drop(writer);
        assert!(matches!(replay_wal(&path), Err(StoreError::WalCorrupt { .. })));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn append_validates_dimension() {
        let path = temp_path("dim");
        let _ = fs::remove_file(&path);
        let mut writer =
            WalWriter::create(&path, WalHeader { epoch: 0, dim: 4, first_id: 0 }).unwrap();
        let err = writer.append(&[WalOp::Insert { id: 0, point: vec![1.0; 3] }]).unwrap_err();
        assert!(matches!(err, StoreError::Invalid(_)));
        // Nothing was written: the segment still replays empty.
        drop(writer);
        let replay = replay_wal(&path).unwrap();
        assert!(replay.ops.is_empty());
        let _ = fs::remove_file(&path);
    }
}
