//! The load-bearing guarantee of the shard subsystem: merged sharded answers are
//! **bit-identical** (neighbor ids + distance bits) to an unsharded index over the
//! same points — across shard counts 1–8, both partitioners, exact and budgeted
//! search.
//!
//! The whole file runs under whichever kernel backend the process dispatches to; CI
//! executes it twice (the default SIMD job and the `P2H_FORCE_SCALAR=1` job), so both
//! dispatch arms carry the guarantee.

use p2h_core::{
    HyperplaneQuery, LinearScan, Neighbor, P2hIndex, PointSet, QueryScratch, SearchParams,
};
use p2h_data::{generate_queries, DataDistribution, QueryDistribution, SyntheticDataset};
use p2h_shard::{Partitioner, ShardIndexKind, ShardedIndexBuilder};
use proptest::prelude::*;

fn dataset(n: usize, raw_dim: usize, seed: u64) -> PointSet {
    SyntheticDataset::new(
        "shard-equivalence",
        n,
        raw_dim,
        DataDistribution::GaussianClusters { clusters: 5, std_dev: 1.2 },
        seed,
    )
    .generate()
    .unwrap()
}

fn assert_bit_identical(got: &[Neighbor], expected: &[Neighbor], context: &str) {
    assert_eq!(got.len(), expected.len(), "{context}: result lengths differ");
    for (g, e) in got.iter().zip(expected) {
        assert_eq!(g.index, e.index, "{context}: neighbor ids differ");
        assert_eq!(
            g.distance.to_bits(),
            e.distance.to_bits(),
            "{context}: distance bits differ at id {}",
            g.index
        );
    }
}

fn partitioners(shards: usize) -> [Partitioner; 2] {
    [Partitioner::Contiguous { shards }, Partitioner::Hash { shards }]
}

/// Exact search: every index kind, every shard count 1–8, both partitioners, against
/// the linear-scan oracle (which every exact index agrees with bit-for-bit).
#[test]
fn exact_sharded_answers_match_unsharded_for_every_kind() {
    let points = dataset(1_000, 10, 21);
    let queries = generate_queries(&points, 6, QueryDistribution::DataDifference, 5).unwrap();
    let oracle = LinearScan::new(points.clone());
    let k = 10;

    for shards in 1..=8 {
        for partitioner in partitioners(shards) {
            for kind in [
                ShardIndexKind::LinearScan,
                ShardIndexKind::BallTree { leaf_size: 32 },
                ShardIndexKind::BcTree { leaf_size: 32 },
            ] {
                let sharded = ShardedIndexBuilder::new(partitioner, kind)
                    .with_seed(9)
                    .build(&points)
                    .unwrap();
                for query in &queries {
                    let expected = oracle.search(query, &SearchParams::exact(k));
                    let got = sharded.search(query, &SearchParams::exact(k));
                    assert_bit_identical(
                        &got.neighbors,
                        &expected.neighbors,
                        &format!("{partitioner:?} {kind:?} shards={shards}"),
                    );
                }
            }
        }
    }
}

/// Budgeted search over linear-scan shards: the global-id budget split makes the union
/// of verified points exactly the `0..B` prefix, so the merged answer equals the
/// unsharded budgeted scan bit-for-bit — including the verified-candidate count.
#[test]
fn budgeted_sharded_scan_matches_unsharded_scan() {
    let points = dataset(800, 8, 33);
    let queries = generate_queries(&points, 5, QueryDistribution::DataDifference, 11).unwrap();
    let oracle = LinearScan::new(points.clone());

    for shards in 1..=8 {
        for partitioner in partitioners(shards) {
            let sharded = ShardedIndexBuilder::new(partitioner, ShardIndexKind::LinearScan)
                .build(&points)
                .unwrap();
            for budget in [1, 7, 100, 799, 800, 5_000] {
                let params = SearchParams::approximate(5, budget);
                for query in &queries {
                    let expected = oracle.search(query, &params);
                    let got = sharded.search(query, &params);
                    assert_bit_identical(
                        &got.neighbors,
                        &expected.neighbors,
                        &format!("{partitioner:?} shards={shards} budget={budget}"),
                    );
                    assert_eq!(
                        got.stats.candidates_verified, expected.stats.candidates_verified,
                        "the budget slices must add up to the unsharded budget"
                    );
                }
            }
        }
    }
}

/// Budgeted search over tree shards is approximate (traversal orders differ from an
/// unsharded tree), but the budget itself must be respected globally.
#[test]
fn budgeted_tree_shards_respect_the_global_budget() {
    let points = dataset(900, 8, 55);
    let queries = generate_queries(&points, 4, QueryDistribution::DataDifference, 3).unwrap();
    for partitioner in partitioners(4) {
        let sharded =
            ShardedIndexBuilder::new(partitioner, ShardIndexKind::BcTree { leaf_size: 24 })
                .build(&points)
                .unwrap();
        for budget in [10, 200, 900] {
            for query in &queries {
                let got = sharded.search(query, &SearchParams::approximate(5, budget));
                assert!(
                    got.stats.candidates_verified <= budget as u64,
                    "verified {} candidates for a budget of {budget}",
                    got.stats.candidates_verified
                );
                assert!(!got.neighbors.is_empty());
            }
        }
    }
}

/// Scratch reuse across many queries must not change any answer (the engine serves
/// thousands of queries per scratch).
#[test]
fn scratch_reuse_is_answer_invariant() {
    let points = dataset(600, 6, 77);
    let queries = generate_queries(&points, 12, QueryDistribution::DataDifference, 7).unwrap();
    let sharded = ShardedIndexBuilder::new(
        Partitioner::Hash { shards: 5 },
        ShardIndexKind::BallTree { leaf_size: 16 },
    )
    .build(&points)
    .unwrap();
    let mut scratch = QueryScratch::new();
    for query in &queries {
        let fresh = sharded.search(query, &SearchParams::exact(8));
        let reused = sharded.search_with_scratch(query, &SearchParams::exact(8), &mut scratch);
        assert_eq!(fresh.neighbors, reused.neighbors);
    }
}

proptest! {
    /// Randomized sweep of the exact guarantee: data shape, shard count, partitioner,
    /// k, and the index kind all vary per case.
    #[test]
    fn prop_exact_sharded_equals_unsharded(
        n in 40usize..300,
        raw_dim in 2usize..9,
        shards in 1usize..9,
        hash_partitioner in 0u32..2,
        k in 1usize..12,
        kind_choice in 0u32..3,
        seed in 0u64..1_000,
    ) {
        let points = dataset(n, raw_dim, seed);
        let queries =
            generate_queries(&points, 3, QueryDistribution::DataDifference, seed + 1).unwrap();
        let partitioner = if hash_partitioner == 1 {
            Partitioner::Hash { shards }
        } else {
            Partitioner::Contiguous { shards }
        };
        let kind = match kind_choice {
            0 => ShardIndexKind::LinearScan,
            1 => ShardIndexKind::BallTree { leaf_size: 16 },
            _ => ShardIndexKind::BcTree { leaf_size: 16 },
        };
        let sharded =
            ShardedIndexBuilder::new(partitioner, kind).with_seed(seed).build(&points).unwrap();
        let oracle = LinearScan::new(points);
        for query in &queries {
            let expected = oracle.search(query, &SearchParams::exact(k));
            let got = sharded.search(query, &SearchParams::exact(k));
            prop_assert_eq!(got.neighbors.len(), expected.neighbors.len());
            for (g, e) in got.neighbors.iter().zip(&expected.neighbors) {
                prop_assert_eq!(g.index, e.index);
                prop_assert_eq!(g.distance.to_bits(), e.distance.to_bits());
            }
        }
    }

    /// Randomized sweep of the budgeted guarantee for linear-scan shards.
    #[test]
    fn prop_budgeted_sharded_scan_equals_unsharded(
        n in 40usize..250,
        raw_dim in 2usize..7,
        shards in 1usize..9,
        hash_partitioner in 0u32..2,
        budget in 1usize..400,
        seed in 0u64..1_000,
    ) {
        let points = dataset(n, raw_dim, seed);
        let queries =
            generate_queries(&points, 2, QueryDistribution::DataDifference, seed + 2).unwrap();
        let partitioner = if hash_partitioner == 1 {
            Partitioner::Hash { shards }
        } else {
            Partitioner::Contiguous { shards }
        };
        let sharded = ShardedIndexBuilder::new(partitioner, ShardIndexKind::LinearScan)
            .build(&points)
            .unwrap();
        let oracle = LinearScan::new(points);
        let params = SearchParams::approximate(6, budget);
        for query in &queries {
            let expected = oracle.search(query, &params);
            let got = sharded.search(query, &params);
            prop_assert_eq!(got.neighbors.len(), expected.neighbors.len());
            for (g, e) in got.neighbors.iter().zip(&expected.neighbors) {
                prop_assert_eq!(g.index, e.index);
                prop_assert_eq!(g.distance.to_bits(), e.distance.to_bits());
            }
        }
    }
}

/// The merged stats must cover every shard's work (sanity on the aggregation).
#[test]
fn merged_stats_aggregate_across_shards() {
    let points = dataset(500, 6, 99);
    let query: HyperplaneQuery =
        generate_queries(&points, 1, QueryDistribution::DataDifference, 1).unwrap().remove(0);
    let sharded =
        ShardedIndexBuilder::new(Partitioner::Contiguous { shards: 4 }, ShardIndexKind::LinearScan)
            .build(&points)
            .unwrap();
    let result = sharded.search(&query, &SearchParams::exact(3));
    // A sharded linear scan verifies every point exactly once.
    assert_eq!(result.stats.candidates_verified, 500);
    assert_eq!(result.stats.inner_products, 500);
    assert!(result.stats.time_total_ns > 0);
}
