//! Shard-group persistence: a sharded index snapshots into the store's shard-group
//! layout and reloads bit-identically; every corruption of the multi-file layout is a
//! typed error and loading stays all-or-nothing; replacing a group is atomic (epoch
//! staging) and reclaims superseded files.

use std::path::PathBuf;

use p2h_core::{P2hIndex, PointSet, SearchParams};
use p2h_data::{generate_queries, DataDistribution, QueryDistribution, SyntheticDataset};
use p2h_shard::{Partitioner, ShardIndexKind, ShardedIndex, ShardedIndexBuilder};
use p2h_store::{Store, StoreEntry, StoreError};

fn dataset(n: usize, raw_dim: usize) -> PointSet {
    SyntheticDataset::new(
        "shard-store",
        n,
        raw_dim,
        DataDistribution::GaussianClusters { clusters: 4, std_dev: 1.0 },
        17,
    )
    .generate()
    .unwrap()
}

fn temp_dir(name: &str) -> PathBuf {
    let mut dir = std::env::temp_dir();
    dir.push(format!("p2h-shard-store-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn build_sharded(points: &PointSet, shards: usize) -> ShardedIndex {
    ShardedIndexBuilder::new(Partitioner::Hash { shards }, ShardIndexKind::BcTree { leaf_size: 24 })
        .with_seed(5)
        .build(points)
        .unwrap()
}

#[test]
fn shard_group_round_trips_bit_identically() {
    let dir = temp_dir("roundtrip");
    let points = dataset(1_200, 10);
    let queries = generate_queries(&points, 16, QueryDistribution::DataDifference, 3).unwrap();
    let sharded = build_sharded(&points, 4);

    let store = Store::create(&dir).unwrap();
    sharded.save_into(&store, "sharded").unwrap();
    assert_eq!(store.is_shard_group("sharded").unwrap(), Some(true));
    assert_eq!(store.names().unwrap(), vec!["sharded"]);

    let restored = ShardedIndex::load_from(&store, "sharded").unwrap();
    assert_eq!(restored.shard_count(), sharded.shard_count());
    assert_eq!(restored.partitioner(), sharded.partitioner());
    assert_eq!(restored.build_seed(), sharded.build_seed());
    for (params_name, params) in
        [("exact", SearchParams::exact(10)), ("budgeted", SearchParams::approximate(10, 300))]
    {
        for query in &queries {
            let a = sharded.search(query, &params);
            let b = restored.search(query, &params);
            assert_eq!(a.neighbors.len(), b.neighbors.len());
            for (x, y) in a.neighbors.iter().zip(&b.neighbors) {
                assert_eq!(x.index, y.index, "{params_name}");
                assert_eq!(x.distance.to_bits(), y.distance.to_bits(), "{params_name}");
            }
        }
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mixed_stores_load_through_entries() {
    let dir = temp_dir("mixed");
    let points = dataset(400, 6);
    let store = Store::create(&dir).unwrap();
    store.save("scan", &p2h_core::LinearScan::new(points.clone())).unwrap();
    build_sharded(&points, 3).save_into(&store, "sharded").unwrap();

    let entries = store.load_entries().unwrap();
    assert_eq!(entries.len(), 2);
    assert!(matches!(&entries[0], (name, StoreEntry::Single(_)) if name == "scan"));
    assert!(matches!(&entries[1], (name, StoreEntry::ShardGroup(_)) if name == "sharded"));

    // The single-index loader refuses mixed stores with a typed error.
    assert!(matches!(store.load_all(), Err(StoreError::EntryKind { is_group: true, .. })));
    // Kind confusion between entry types is typed, not a decode crash.
    assert!(matches!(
        store.load_shard_group("scan"),
        Err(StoreError::EntryKind { is_group: false, .. })
    ));
    assert!(matches!(store.load_any("sharded"), Err(StoreError::EntryKind { is_group: true, .. })));
    assert!(matches!(store.load_shard_group("nope"), Err(StoreError::MissingEntry(_))));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn group_replacement_is_epoch_staged_and_reclaims_old_files() {
    let dir = temp_dir("epochs");
    let points = dataset(600, 6);
    let store = Store::create(&dir).unwrap();

    build_sharded(&points, 4).save_into(&store, "idx").unwrap();
    let epoch1_files: Vec<String> = list_p2hs(&dir);
    assert_eq!(epoch1_files.len(), 5, "map file + 4 shards: {epoch1_files:?}");
    assert!(epoch1_files.iter().all(|f| f.contains(".g1.")));

    // Replace with a different shard count: new epoch, old files reclaimed.
    build_sharded(&points, 2).save_into(&store, "idx").unwrap();
    let epoch2_files = list_p2hs(&dir);
    assert_eq!(epoch2_files.len(), 3, "map file + 2 shards: {epoch2_files:?}");
    assert!(epoch2_files.iter().all(|f| f.contains(".g2.")));

    let restored = ShardedIndex::load_from(&store, "idx").unwrap();
    assert_eq!(restored.shard_count(), 2);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stray_staged_files_from_a_crashed_save_are_ignored() {
    let dir = temp_dir("crash");
    let points = dataset(500, 6);
    let store = Store::create(&dir).unwrap();
    let sharded = build_sharded(&points, 3);
    sharded.save_into(&store, "idx").unwrap();

    // Simulate a crash mid-save of epoch 2: some staged files exist, but the manifest
    // was never swapped. Readers must keep serving epoch 1 untouched.
    std::fs::write(dir.join("idx.g2.s0.p2hs"), b"half-written garbage").unwrap();
    std::fs::write(dir.join("idx.g2.map.p2hs.tmp"), b"tmp leftovers").unwrap();

    let restored = ShardedIndex::load_from(&store, "idx").unwrap();
    assert_eq!(restored.shard_count(), 3);
    let queries = generate_queries(&points, 4, QueryDistribution::DataDifference, 9).unwrap();
    for query in &queries {
        let a = sharded.search(query, &SearchParams::exact(5));
        let b = restored.search(query, &SearchParams::exact(5));
        assert_eq!(a.neighbors, b.neighbors);
    }

    // The next successful save claims epoch 2, overwriting the uncommitted stray
    // files, and supersedes the live epoch-1 files.
    build_sharded(&points, 2).save_into(&store, "idx").unwrap();
    assert_eq!(ShardedIndex::load_from(&store, "idx").unwrap().shard_count(), 2);
    assert!(!list_p2hs(&dir).iter().any(|f| f.contains(".g1.")), "epoch 1 reclaimed");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corruption_anywhere_in_the_group_fails_loading_all_or_nothing() {
    let points = dataset(500, 6);

    // Corrupt one shard file.
    {
        let dir = temp_dir("corrupt-shard");
        let store = Store::create(&dir).unwrap();
        build_sharded(&points, 3).save_into(&store, "idx").unwrap();
        let shard_file = dir.join("idx.g1.s1.p2hs");
        let mut bytes = std::fs::read(&shard_file).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x20;
        std::fs::write(&shard_file, &bytes).unwrap();
        assert!(matches!(
            ShardedIndex::load_from(&store, "idx"),
            Err(StoreError::ChecksumMismatch { .. })
        ));
        assert!(store.load_entries().is_err(), "all-or-nothing");
        std::fs::remove_dir_all(&dir).ok();
    }

    // Corrupt the map file.
    {
        let dir = temp_dir("corrupt-map");
        let store = Store::create(&dir).unwrap();
        build_sharded(&points, 3).save_into(&store, "idx").unwrap();
        let map_file = dir.join("idx.g1.map.p2hs");
        let mut bytes = std::fs::read(&map_file).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x04;
        std::fs::write(&map_file, &bytes).unwrap();
        assert!(matches!(
            ShardedIndex::load_from(&store, "idx"),
            Err(StoreError::ChecksumMismatch { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    // Delete a shard file entirely.
    {
        let dir = temp_dir("missing-shard");
        let store = Store::create(&dir).unwrap();
        build_sharded(&points, 3).save_into(&store, "idx").unwrap();
        std::fs::remove_file(dir.join("idx.g1.s2.p2hs")).unwrap();
        assert!(matches!(ShardedIndex::load_from(&store, "idx"), Err(StoreError::Io { .. })));
        std::fs::remove_dir_all(&dir).ok();
    }

    // Swap two shard files: each decodes fine, but the id maps no longer match the
    // shard contents — the cross-file consistency check must catch it.
    {
        let dir = temp_dir("swapped-shards");
        let store = Store::create(&dir).unwrap();
        let sharded = ShardedIndexBuilder::new(
            Partitioner::Contiguous { shards: 3 },
            ShardIndexKind::LinearScan,
        )
        .build(&points)
        .unwrap();
        sharded.save_into(&store, "idx").unwrap();
        let a = dir.join("idx.g1.s0.p2hs");
        let b = dir.join("idx.g1.s2.p2hs");
        let bytes_a = std::fs::read(&a).unwrap();
        let bytes_b = std::fs::read(&b).unwrap();
        std::fs::write(&a, &bytes_b).unwrap();
        std::fs::write(&b, &bytes_a).unwrap();
        // Contiguous thirds of 500 points have sizes 167/167/166, so the swap is a
        // count mismatch between id maps and shard contents.
        assert!(matches!(
            ShardedIndex::load_from(&store, "idx"),
            Err(StoreError::GroupInconsistent { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn single_replacement_is_epoch_staged_too() {
    // Replacing a single snapshot must never overwrite the live file in place: the
    // new bytes stage under a fresh epoch name and the manifest commit switches
    // readers over, exactly like shard groups.
    let dir = temp_dir("single-epochs");
    let points = dataset(300, 5);
    let store = Store::create(&dir).unwrap();
    let scan = p2h_core::LinearScan::new(points.clone());

    let first = store.save("idx", &scan).unwrap();
    assert!(first.ends_with("idx.p2hs"));
    let original_bytes = std::fs::read(&first).unwrap();

    // Simulate a crashed replacement: stage the epoch file without a manifest commit.
    std::fs::write(dir.join("idx.e1.p2hs"), b"half-written").unwrap();
    let loaded: p2h_core::LinearScan = store.load("idx").unwrap();
    assert_eq!(loaded.points(), scan.points(), "readers still see the committed snapshot");

    // A successful replacement claims epoch 1 (overwriting the stray), commits, and
    // reclaims the superseded plain-name file.
    let second = store.save("idx", &scan).unwrap();
    assert!(second.ends_with("idx.e1.p2hs"));
    assert!(!first.exists(), "superseded snapshot reclaimed after the commit");
    assert_eq!(std::fs::read(&second).unwrap(), original_bytes);
    let third = store.save("idx", &scan).unwrap();
    assert!(third.ends_with("idx.e2.p2hs"));
    assert!(!second.exists());
    let reloaded: p2h_core::LinearScan = store.load("idx").unwrap();
    assert_eq!(reloaded.points(), scan.points());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn single_snapshot_saves_still_round_trip_next_to_groups() {
    // Regression guard: the manifest refactor must not disturb single-index saves.
    let dir = temp_dir("single");
    let points = dataset(300, 5);
    let store = Store::create(&dir).unwrap();
    let scan = p2h_core::LinearScan::new(points.clone());
    store.save("scan", &scan).unwrap();
    build_sharded(&points, 2).save_into(&store, "group").unwrap();

    let loaded: p2h_core::LinearScan = store.load("scan").unwrap();
    let queries = generate_queries(&points, 3, QueryDistribution::DataDifference, 2).unwrap();
    for query in &queries {
        assert_eq!(
            scan.search(query, &SearchParams::exact(4)).neighbors,
            loaded.search(query, &SearchParams::exact(4)).neighbors
        );
    }
    assert_eq!(store.is_shard_group("scan").unwrap(), Some(false));
    assert_eq!(store.is_shard_group("missing").unwrap(), None);

    std::fs::remove_dir_all(&dir).ok();
}

fn list_p2hs(dir: &std::path::Path) -> Vec<String> {
    let mut files: Vec<String> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .filter(|f| f.ends_with(".p2hs"))
        .collect();
    files.sort();
    files
}

// ---------------------------------------------------------------------------
// Zero-copy (LoadMode::Mmap) shard groups
// ---------------------------------------------------------------------------

/// Bit-level equality of two indexes over a query batch (ids + distance bits).
fn assert_answers_identical(a: &dyn P2hIndex, b: &dyn P2hIndex, points: &PointSet, seed: u64) {
    let queries = generate_queries(points, 8, QueryDistribution::DataDifference, seed).unwrap();
    for params in [SearchParams::exact(10), SearchParams::approximate(10, points.len() / 2)] {
        for query in &queries {
            let ra = a.search(query, &params);
            let rb = b.search(query, &params);
            assert_eq!(ra.neighbors.len(), rb.neighbors.len());
            for (x, y) in ra.neighbors.iter().zip(&rb.neighbors) {
                assert_eq!(x.index, y.index);
                assert_eq!(x.distance.to_bits(), y.distance.to_bits());
            }
        }
    }
}

#[test]
fn shard_groups_cold_start_zero_copy_under_mmap() {
    use p2h_store::LoadMode;
    let dir = temp_dir("mmap-group");
    let points = dataset(1_000, 8);
    let sharded = build_sharded(&points, 3);
    let store = Store::create(&dir).unwrap();
    sharded.save_into(&store, "g").unwrap();

    let copied = ShardedIndex::load_from(&store.clone().with_mode(LoadMode::Copy), "g").unwrap();
    let mapped = ShardedIndex::load_from(&store.with_mode(LoadMode::Mmap), "g").unwrap();
    // One region per epoch file: every shard's points view its own snapshot mapping.
    assert_eq!(mapped.shard_count(), copied.shard_count());
    assert_answers_identical(&copied, &mapped, &points, 21);
    assert_answers_identical(&sharded, &mapped, &points, 22);
    std::fs::remove_dir_all(&dir).ok();
}

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(5))]

    /// `LoadMode::Mmap` ≡ `LoadMode::Copy` ≡ the in-memory original, bit-identically,
    /// across shard counts and both partitioners (the single-index half of this
    /// property lives in `p2h-store`'s zero-copy suite).
    #[test]
    fn mmap_equals_copy_for_shard_groups(
        shards in 1usize..6,
        partitioner_kind in 0usize..2,
        seed in 0u64..500,
    ) {
        use p2h_store::LoadMode;
        let dir = temp_dir(&format!("mmap-prop-{shards}-{partitioner_kind}-{seed}"));
        let points = dataset(600, 6);
        let partitioner = if partitioner_kind == 1 {
            Partitioner::Hash { shards }
        } else {
            Partitioner::Contiguous { shards }
        };
        let sharded =
            ShardedIndexBuilder::new(partitioner, ShardIndexKind::BcTree { leaf_size: 24 })
                .with_seed(seed)
                .build(&points)
                .unwrap();
        let store = Store::create(&dir).unwrap();
        sharded.save_into(&store, "g").unwrap();
        let copied =
            ShardedIndex::load_from(&store.clone().with_mode(LoadMode::Copy), "g").unwrap();
        let mapped = ShardedIndex::load_from(&store.with_mode(LoadMode::Mmap), "g").unwrap();
        assert_answers_identical(&sharded, &copied, &points, seed ^ 1);
        assert_answers_identical(&copied, &mapped, &points, seed ^ 2);
        std::fs::remove_dir_all(&dir).ok();
    }
}
