//! Persistence glue: moving a [`ShardedIndex`] through the `p2h-store` shard-group
//! layout (one checksummed snapshot per shard plus a map file, committed atomically
//! via the store manifest).

use p2h_core::P2hIndex;
use p2h_store::{ShardGroup, ShardGroupMeta, Store, StoreError, StoreResult};

use crate::partition::Partitioner;
use crate::sharded::ShardedIndex;

impl ShardedIndex {
    /// The shard-group metadata this index persists under.
    pub fn group_meta(&self) -> ShardGroupMeta {
        ShardGroupMeta {
            partitioner_tag: self.partitioner().tag(),
            requested_shards: self.partitioner().shards() as u64,
            total_count: self.len(),
            dim: self.dim(),
            build_seed: self.build_seed(),
        }
    }

    /// Snapshots the sharded index into `store` under `name` as a shard group: one
    /// `P2HS` file per shard plus a map file holding the id mappings and metadata.
    /// The save is committed atomically through the store manifest — a crash at any
    /// point leaves the previous entry complete and loadable.
    ///
    /// # Errors
    ///
    /// Propagates any [`StoreError`] from staging the files or committing the
    /// manifest.
    pub fn save_into(&self, store: &Store, name: &str) -> StoreResult<()> {
        store.save_shard_group(name, &self.group_meta(), self.id_maps(), self.shards())
    }

    /// Restores a sharded index from the shard group registered in `store` under
    /// `name`. Every shard snapshot and the map file are checksum-verified and
    /// structurally validated; the restored index answers queries bit-identically to
    /// the one that was saved (same kernel backend).
    ///
    /// # Errors
    ///
    /// Propagates the store's errors (missing entry, wrong entry kind, corrupt or
    /// mutually inconsistent files) and fails on an unknown partitioner tag.
    pub fn load_from(store: &Store, name: &str) -> StoreResult<Self> {
        Self::from_group(store.load_shard_group(name)?)
    }

    /// Assembles a sharded index from an already loaded [`ShardGroup`] (the path
    /// `p2h-engine` uses when cold-starting a registry from a mixed store).
    ///
    /// # Errors
    ///
    /// Fails on an unknown partitioner tag or structurally inconsistent parts (the
    /// latter cannot happen for groups loaded by the store, which validates the same
    /// invariants, but this constructor does not assume its input came from there).
    pub fn from_group(group: ShardGroup) -> StoreResult<Self> {
        let partitioner =
            Partitioner::from_tag(group.meta.partitioner_tag, group.meta.requested_shards as usize)
                .ok_or_else(|| StoreError::GroupInconsistent {
                    message: format!("unknown partitioner tag {}", group.meta.partitioner_tag),
                })?;
        let sharded = ShardedIndex::from_parts(
            group.shards,
            group.id_maps,
            partitioner,
            group.meta.build_seed,
        )
        .map_err(StoreError::Invalid)?;
        if sharded.len() != group.meta.total_count || sharded.dim() != group.meta.dim {
            return Err(StoreError::GroupInconsistent {
                message: "group metadata disagrees with the restored shards".into(),
            });
        }
        Ok(sharded)
    }
}
