//! Building a [`ShardedIndex`]: partition the points, build one index per shard.

use p2h_balltree::BallTreeBuilder;
use p2h_bctree::BcTreeBuilder;
use p2h_core::{LinearScan, PointSet, Result};
use p2h_store::LoadedIndex;

use crate::partition::Partitioner;
use crate::sharded::ShardedIndex;

/// Which index type to build inside every shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardIndexKind {
    /// Exhaustive scan per shard — no build cost, exact answers, the baseline.
    LinearScan,
    /// A Ball-Tree per shard.
    BallTree {
        /// Maximum leaf size `N0` of each shard's tree.
        leaf_size: usize,
    },
    /// A BC-Tree per shard.
    BcTree {
        /// Maximum leaf size `N0` of each shard's tree.
        leaf_size: usize,
    },
}

/// Builds a [`ShardedIndex`]: the [`Partitioner`] splits the point set, then one index
/// of the configured [`ShardIndexKind`] is built per shard.
///
/// Shard `s` is built with the derived seed `seed + s`, so the whole sharded build is
/// deterministic for a given `(partitioner, kind, seed)` regardless of how it is
/// executed — and each shard still gets an independent random stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardedIndexBuilder {
    /// How the points are split across shards.
    pub partitioner: Partitioner,
    /// The index type built inside each shard.
    pub kind: ShardIndexKind,
    /// Base RNG seed; shard `s` uses `seed + s`.
    pub seed: u64,
}

impl ShardedIndexBuilder {
    /// Creates a builder with the given partitioner and per-shard index kind (seed 0).
    pub fn new(partitioner: Partitioner, kind: ShardIndexKind) -> Self {
        Self { partitioner, kind, seed: 0 }
    }

    /// Sets the base RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds the sharded index, constructing every shard sequentially.
    ///
    /// # Errors
    ///
    /// Returns the partitioner's errors (zero shards, empty point set) and any
    /// per-shard build error.
    pub fn build(&self, points: &PointSet) -> Result<ShardedIndex> {
        self.build_impl(points, None)
    }

    /// Builds the sharded index, constructing every shard with the tree crates'
    /// parallel builders (`threads` worker threads per shard build; `0` = one per
    /// available CPU). Shards themselves are built one after another — the
    /// parallelism lives inside each tree build, so peak memory stays at one shard's
    /// working set. Trees built in parallel differ structurally from sequential
    /// builds (documented by the tree crates) but are deterministic per thread count.
    ///
    /// # Errors
    ///
    /// Same errors as [`ShardedIndexBuilder::build`].
    #[cfg(feature = "parallel")]
    pub fn build_parallel(&self, points: &PointSet, threads: usize) -> Result<ShardedIndex> {
        self.build_impl(points, Some(threads))
    }

    fn build_impl(
        &self,
        points: &PointSet,
        parallel_threads: Option<usize>,
    ) -> Result<ShardedIndex> {
        #[cfg(not(feature = "parallel"))]
        let _ = parallel_threads;
        let id_maps = self.partitioner.assign(points.len())?;
        let dim = points.dim();
        let mut shards = Vec::with_capacity(id_maps.len());
        for (ordinal, ids) in id_maps.iter().enumerate() {
            // Gather the shard's rows into a dense point set (row order = id order, so
            // local positions stay monotone in global id — the merge invariant).
            let mut flat = Vec::with_capacity(ids.len() * dim);
            for &id in ids {
                flat.extend_from_slice(points.point(id as usize));
            }
            let shard_points = PointSet::from_flat(dim, flat)?;
            let seed = self.seed.wrapping_add(ordinal as u64);
            let shard = match self.kind {
                ShardIndexKind::LinearScan => {
                    LoadedIndex::LinearScan(LinearScan::new(shard_points))
                }
                ShardIndexKind::BallTree { leaf_size } => {
                    let builder = BallTreeBuilder::new(leaf_size).with_seed(seed);
                    LoadedIndex::BallTree(match parallel_threads {
                        #[cfg(feature = "parallel")]
                        Some(threads) => builder.build_parallel(&shard_points, threads)?,
                        _ => builder.build(&shard_points)?,
                    })
                }
                ShardIndexKind::BcTree { leaf_size } => {
                    let builder = BcTreeBuilder::new(leaf_size).with_seed(seed);
                    LoadedIndex::BcTree(match parallel_threads {
                        #[cfg(feature = "parallel")]
                        Some(threads) => builder.build_parallel(&shard_points, threads)?,
                        _ => builder.build(&shard_points)?,
                    })
                }
            };
            shards.push(shard);
        }
        let id_maps = id_maps.into_iter().map(Into::into).collect();
        ShardedIndex::from_parts(shards, id_maps, self.partitioner, self.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2h_core::{P2hIndex, Scalar};

    fn points(n: usize) -> PointSet {
        let rows: Vec<Vec<Scalar>> =
            (0..n).map(|i| vec![(i % 13) as Scalar * 0.7, (i % 7) as Scalar - 3.0]).collect();
        PointSet::augment(&rows).unwrap()
    }

    #[test]
    fn builds_every_kind_over_every_partitioner() {
        let ps = points(300);
        for partitioner in [Partitioner::Contiguous { shards: 4 }, Partitioner::Hash { shards: 4 }]
        {
            for kind in [
                ShardIndexKind::LinearScan,
                ShardIndexKind::BallTree { leaf_size: 16 },
                ShardIndexKind::BcTree { leaf_size: 16 },
            ] {
                let sharded =
                    ShardedIndexBuilder::new(partitioner, kind).with_seed(3).build(&ps).unwrap();
                assert_eq!(sharded.len(), 300);
                assert_eq!(sharded.dim(), 3);
                assert_eq!(sharded.shard_count(), 4);
                assert_eq!(sharded.build_seed(), 3);
                assert_eq!(sharded.partitioner(), partitioner);
            }
        }
    }

    #[test]
    fn shard_points_follow_the_id_map() {
        let ps = points(50);
        let sharded =
            ShardedIndexBuilder::new(Partitioner::Hash { shards: 3 }, ShardIndexKind::LinearScan)
                .build(&ps)
                .unwrap();
        for s in 0..sharded.shard_count() {
            let p2h_store::LoadedIndex::LinearScan(scan) = &sharded.shards()[s] else {
                panic!("expected linear-scan shards")
            };
            for (local, &global) in sharded.id_map(s).iter().enumerate() {
                assert_eq!(scan.points().point(local), ps.point(global as usize));
            }
        }
    }

    #[test]
    fn more_shards_than_points_is_clamped() {
        let ps = points(3);
        let sharded = ShardedIndexBuilder::new(
            Partitioner::Contiguous { shards: 10 },
            ShardIndexKind::LinearScan,
        )
        .build(&ps)
        .unwrap();
        assert_eq!(sharded.shard_count(), 3);
        assert_eq!(sharded.len(), 3);
    }

    #[test]
    fn zero_shards_is_an_error() {
        let ps = points(10);
        assert!(ShardedIndexBuilder::new(
            Partitioner::Contiguous { shards: 0 },
            ShardIndexKind::LinearScan
        )
        .build(&ps)
        .is_err());
    }
}
