//! The sharded index: per-shard fan-out with a deterministic top-k merge.

use std::time::Instant;

use p2h_core::{
    HyperplaneQuery, P2hIndex, QueryScratch, SearchParams, SearchResult, SearchStats, VecBuf,
};
use p2h_store::LoadedIndex;

use crate::partition::Partitioner;

/// A point set partitioned across several independently built indexes, searchable
/// through the ordinary [`P2hIndex`] trait.
///
/// A query fans out over the shards — sequentially in [`P2hIndex::search_with_scratch`]
/// (one worker, one reused scratch; the batch executor in `p2h-engine` parallelizes
/// over queries), or shard-parallel through the engine's `ShardedExecutor` — and the
/// per-shard top-k lists are merged with the total [`Neighbor`] order. For exact
/// search the merged answer is **bit-identical** (neighbor ids and distance bits) to a
/// single index of the same kind over the unpartitioned points, for every shard count
/// and either [`Partitioner`] (see the crate docs for the argument).
///
/// Shards are stored as [`LoadedIndex`] — the same tagged concrete type the snapshot
/// store restores — so a sharded index moves between memory and the store's
/// shard-group layout without re-wrapping.
#[derive(Debug)]
pub struct ShardedIndex {
    shards: Vec<LoadedIndex>,
    /// `id_maps[s][local] = global`; strictly increasing per shard, disjoint cover of
    /// `0..total_len` across shards. Buffer-backed: zero-copy views of the map file
    /// when the group was cold-started under `LoadMode::Mmap`.
    id_maps: Vec<VecBuf<u32>>,
    partitioner: Partitioner,
    build_seed: u64,
    dim: usize,
    total_len: usize,
}

impl ShardedIndex {
    /// Assembles a sharded index from already built shards and their id maps — the
    /// trusting-but-verifying constructor behind the builder and the store load path.
    ///
    /// # Errors
    ///
    /// Returns [`p2h_core::Error::Corrupt`] (never panics) if the parts are
    /// inconsistent: no shards, shard/id-map count or length mismatches, differing
    /// dimensions, id maps that are not strictly increasing, or ids that do not form a
    /// disjoint cover of `0..n`.
    pub fn from_parts(
        shards: Vec<LoadedIndex>,
        id_maps: Vec<VecBuf<u32>>,
        partitioner: Partitioner,
        build_seed: u64,
    ) -> p2h_core::Result<Self> {
        use p2h_core::Error;
        if shards.is_empty() || id_maps.len() != shards.len() {
            return Err(Error::Corrupt(format!(
                "{} shards with {} id maps",
                shards.len(),
                id_maps.len()
            )));
        }
        let dim = shards[0].as_index().dim();
        let total_len: usize = id_maps.iter().map(|ids| ids.len()).sum();
        let mut seen = vec![false; total_len];
        for (ordinal, (shard, ids)) in shards.iter().zip(&id_maps).enumerate() {
            let index = shard.as_index();
            if index.len() != ids.len() || ids.is_empty() {
                return Err(Error::Corrupt(format!(
                    "shard {ordinal} holds {} points but its id map lists {}",
                    index.len(),
                    ids.len()
                )));
            }
            if index.dim() != dim {
                return Err(Error::Corrupt(format!(
                    "shard {ordinal} has dim {}, shard 0 has dim {dim}",
                    index.dim()
                )));
            }
            let mut prev: Option<u32> = None;
            for &id in ids.iter() {
                if prev.is_some_and(|p| p >= id) {
                    return Err(Error::Corrupt(format!(
                        "shard {ordinal} id map is not strictly increasing"
                    )));
                }
                prev = Some(id);
                let id = id as usize;
                if id >= total_len || seen[id] {
                    return Err(Error::Corrupt(format!(
                        "shard {ordinal} id map is not part of a permutation of 0..{total_len}"
                    )));
                }
                seen[id] = true;
            }
        }
        // `seen` is fully covered by construction: every id was in range, none twice,
        // and their count is exactly `total_len`.
        Ok(Self { shards, id_maps, partitioner, build_seed, dim, total_len })
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The index serving shard `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s >= self.shard_count()`.
    pub fn shard(&self, s: usize) -> &dyn P2hIndex {
        self.shards[s].as_index()
    }

    /// The tagged concrete shards, in ordinal order (what the store persists).
    pub fn shards(&self) -> &[LoadedIndex] {
        &self.shards
    }

    /// The local-position → global-id map of shard `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s >= self.shard_count()`.
    pub fn id_map(&self, s: usize) -> &[u32] {
        &self.id_maps[s]
    }

    /// All id maps, in shard-ordinal order.
    pub fn id_maps(&self) -> &[VecBuf<u32>] {
        &self.id_maps
    }

    /// The partitioner the points were split with.
    pub fn partitioner(&self) -> Partitioner {
        self.partitioner
    }

    /// The RNG seed the per-shard indexes were derived from.
    pub fn build_seed(&self) -> u64 {
        self.build_seed
    }

    /// The parameters shard `s` should run for a query with `params`, or `None` when
    /// the shard can be skipped outright (its slice of the candidate budget is empty).
    ///
    /// Exact searches pass through unchanged. A candidate budget `B` is split by the
    /// global-id prefix: shard `s` receives `|{g ∈ shard s : g < B}|` — across shards
    /// these slices sum to `min(B, n)`, and for linear-scan shards the union of
    /// verified points is exactly the `0..B` prefix an unsharded scan verifies.
    pub fn shard_params(&self, s: usize, params: &SearchParams) -> Option<SearchParams> {
        match params.candidate_limit {
            None => Some(params.clone()),
            Some(limit) => {
                let budget = self.id_maps[s].partition_point(|&g| (g as usize) < limit);
                (budget > 0)
                    .then(|| SearchParams { candidate_limit: Some(budget), ..params.clone() })
            }
        }
    }

    /// Searches shard `s` and maps the resulting neighbor ids to global ids, or
    /// returns `None` when the shard's budget slice is empty. The returned list stays
    /// sorted by the total [`Neighbor`] order (the id map is strictly increasing, so
    /// the local order *is* the global order within the shard).
    pub fn search_shard(
        &self,
        s: usize,
        query: &HyperplaneQuery,
        params: &SearchParams,
        scratch: &mut QueryScratch,
    ) -> Option<SearchResult> {
        let shard_params = self.shard_params(s, params)?;
        let mut result =
            self.shards[s].as_index().search_with_scratch(query, &shard_params, scratch);
        let ids = &self.id_maps[s];
        for neighbor in &mut result.neighbors {
            neighbor.index = ids[neighbor.index] as usize;
        }
        Some(result)
    }

    /// Approximate memory of the id maps in bytes.
    fn id_map_bytes(&self) -> usize {
        self.id_maps.iter().map(|m| m.len() * std::mem::size_of::<u32>()).sum()
    }
}

// Promoted to `p2h_core::topk` so the live memtable layering shares the exact same
// merge (bit-identity across fan-out paths is a single-implementation property);
// re-exported here because the shard fan-out is its original home.
pub use p2h_core::merge_topk;

impl P2hIndex for ShardedIndex {
    fn name(&self) -> &'static str {
        "Sharded"
    }

    fn len(&self) -> usize {
        self.total_len
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn index_size_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.as_index().index_size_bytes()).sum::<usize>()
            + self.id_map_bytes()
            + std::mem::size_of::<Self>()
    }

    fn search(&self, query: &HyperplaneQuery, params: &SearchParams) -> SearchResult {
        self.search_with_scratch(query, params, &mut QueryScratch::new())
    }

    fn search_with_scratch(
        &self,
        query: &HyperplaneQuery,
        params: &SearchParams,
        scratch: &mut QueryScratch,
    ) -> SearchResult {
        let start = Instant::now();
        let mut stats = SearchStats::default();
        let mut lists = Vec::with_capacity(self.shards.len());
        for s in 0..self.shards.len() {
            if let Some(result) = self.search_shard(s, query, params, scratch) {
                stats.merge(&result.stats);
                lists.push(result.neighbors);
            }
        }
        let neighbors = merge_topk(params.k, lists);
        // Per-shard totals were summed by `merge`; report the true wall-clock time of
        // the fan-out + merge instead (it also covers the merge itself).
        stats.time_total_ns = start.elapsed().as_nanos() as u64;
        SearchResult { neighbors, stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2h_core::{LinearScan, Neighbor, PointSet, Scalar};
    use p2h_store::LoadedIndex;

    fn neighbors(raw: &[(usize, Scalar)]) -> Vec<Neighbor> {
        raw.iter().map(|&(i, d)| Neighbor::new(i, d)).collect()
    }

    #[test]
    fn merge_takes_global_topk_with_total_order() {
        let merged = merge_topk(
            3,
            vec![
                neighbors(&[(4, 0.5), (0, 1.0)]),
                neighbors(&[(2, 0.25), (7, 1.0)]),
                neighbors(&[(5, 0.5)]),
            ],
        );
        assert_eq!(merged, neighbors(&[(2, 0.25), (4, 0.5), (5, 0.5)]));
    }

    #[test]
    fn merge_breaks_distance_ties_by_global_id() {
        // Two neighbors with identical distance bits: the smaller global id wins,
        // regardless of which shard list it came from or list order.
        let a = merge_topk(1, vec![neighbors(&[(9, 0.5)]), neighbors(&[(3, 0.5)])]);
        let b = merge_topk(1, vec![neighbors(&[(3, 0.5)]), neighbors(&[(9, 0.5)])]);
        assert_eq!(a, neighbors(&[(3, 0.5)]));
        assert_eq!(a, b);
    }

    #[test]
    fn merge_handles_edge_shapes() {
        assert!(merge_topk(5, vec![]).is_empty());
        assert_eq!(merge_topk(0, vec![neighbors(&[(1, 0.1), (2, 0.2)])]).len(), 1);
        let single = merge_topk(10, vec![neighbors(&[(1, 0.1)])]);
        assert_eq!(single.len(), 1);
    }

    fn shard_from_rows(rows: &[Vec<Scalar>]) -> LoadedIndex {
        LoadedIndex::LinearScan(LinearScan::new(PointSet::augment(rows).unwrap()))
    }

    #[test]
    fn from_parts_validates_structure() {
        let shard0 = || shard_from_rows(&[vec![0.0, 0.0], vec![1.0, 1.0]]);
        let shard1 = || shard_from_rows(&[vec![2.0, 2.0], vec![3.0, 3.0]]);
        let partitioner = Partitioner::Contiguous { shards: 2 };

        let ok = ShardedIndex::from_parts(
            vec![shard0(), shard1()],
            vec![vec![0, 2].into(), vec![1, 3].into()],
            partitioner,
            0,
        )
        .unwrap();
        assert_eq!(ok.len(), 4);
        assert_eq!(ok.dim(), 3);
        assert_eq!(ok.shard_count(), 2);
        assert_eq!(ok.id_map(1), &[1, 3]);
        assert!(ok.index_size_bytes() > 0);
        assert_eq!(ok.name(), "Sharded");

        // Mismatched id-map count.
        assert!(ShardedIndex::from_parts(
            vec![shard0(), shard1()],
            vec![vec![0, 1].into()],
            partitioner,
            0
        )
        .is_err());
        // Wrong per-shard length.
        assert!(ShardedIndex::from_parts(
            vec![shard0(), shard1()],
            vec![vec![0].into(), vec![1, 2, 3].into()],
            partitioner,
            0
        )
        .is_err());
        // Duplicate global id.
        assert!(ShardedIndex::from_parts(
            vec![shard0(), shard1()],
            vec![vec![0, 1].into(), vec![1, 3].into()],
            partitioner,
            0
        )
        .is_err());
        // Out-of-order ids.
        assert!(ShardedIndex::from_parts(
            vec![shard0(), shard1()],
            vec![vec![2, 0].into(), vec![1, 3].into()],
            partitioner,
            0
        )
        .is_err());
        // Out-of-range id.
        assert!(ShardedIndex::from_parts(
            vec![shard0(), shard1()],
            vec![vec![0, 7].into(), vec![1, 3].into()],
            partitioner,
            0
        )
        .is_err());
    }

    #[test]
    fn budget_split_covers_the_global_prefix() {
        let shards = vec![
            shard_from_rows(&[vec![0.0, 0.0], vec![2.0, 0.0], vec![4.0, 0.0]]),
            shard_from_rows(&[vec![1.0, 0.0], vec![3.0, 0.0], vec![5.0, 0.0]]),
        ];
        let sharded = ShardedIndex::from_parts(
            shards,
            vec![vec![0, 2, 4].into(), vec![1, 3, 5].into()],
            Partitioner::Hash { shards: 2 },
            0,
        )
        .unwrap();

        // Budget 3 → shard 0 gets {0, 2} (2 slots), shard 1 gets {1} (1 slot).
        let params = SearchParams::approximate(1, 3);
        assert_eq!(sharded.shard_params(0, &params).unwrap().candidate_limit, Some(2));
        assert_eq!(sharded.shard_params(1, &params).unwrap().candidate_limit, Some(1));
        // Budget 0 skips every shard; unlimited passes through.
        assert!(sharded.shard_params(0, &SearchParams::approximate(1, 0)).is_none());
        assert_eq!(sharded.shard_params(0, &SearchParams::exact(1)).unwrap().candidate_limit, None);
        // A budget beyond n degrades to exact.
        assert_eq!(
            sharded.shard_params(1, &SearchParams::approximate(1, 100)).unwrap().candidate_limit,
            Some(3)
        );
    }
}
