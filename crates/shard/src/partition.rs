//! Partitioning strategies: how `n` points are assigned to shards.

use p2h_core::{Error, Result};

/// How a point set is split across shards.
///
/// Both strategies are deterministic functions of `(strategy, n)` and both produce
/// per-shard id maps in **strictly increasing global-id order** (points are assigned in
/// id order), which is the property the exact fan-out merge and the budget split rely
/// on. Shard counts are clamped to `n` so no shard is ever empty; the hash strategy
/// additionally drops shards that received no points (only possible when `n` is close
/// to the shard count).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Partitioner {
    /// Shard `s` holds a contiguous global-id range; ranges are balanced to within one
    /// point. Best when ingestion order carries locality (e.g. time-ordered data) or
    /// when shards should map to contiguous regions of an existing file.
    Contiguous {
        /// Number of shards to create.
        shards: usize,
    },
    /// Points are assigned by a SplitMix64 hash of the global id, scattering any
    /// ordering structure evenly across shards. Best for load-balancing skewed data.
    Hash {
        /// Number of shards to create.
        shards: usize,
    },
}

impl Partitioner {
    /// The shard count this partitioner was configured with.
    pub fn shards(&self) -> usize {
        match *self {
            Partitioner::Contiguous { shards } | Partitioner::Hash { shards } => shards,
        }
    }

    /// The on-disk strategy tag used by the `p2h-store` shard-group format.
    pub fn tag(&self) -> u32 {
        match self {
            Partitioner::Contiguous { .. } => 0,
            Partitioner::Hash { .. } => 1,
        }
    }

    /// Restores a partitioner from its on-disk tag and configured shard count.
    pub fn from_tag(tag: u32, shards: usize) -> Option<Self> {
        match tag {
            0 => Some(Partitioner::Contiguous { shards }),
            1 => Some(Partitioner::Hash { shards }),
            _ => None,
        }
    }

    /// Assigns `n` points to shards, returning one strictly increasing global-id list
    /// per shard. Every point appears in exactly one list and no list is empty.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if the configured shard count is zero and
    /// [`Error::EmptyDataSet`] if `n` is zero.
    pub fn assign(&self, n: usize) -> Result<Vec<Vec<u32>>> {
        if self.shards() == 0 {
            return Err(Error::InvalidParameter {
                name: "shards",
                message: "the shard count must be at least 1".into(),
            });
        }
        if n == 0 {
            return Err(Error::EmptyDataSet);
        }
        let shards = self.shards().min(n);
        let id_maps = match *self {
            Partitioner::Contiguous { .. } => {
                // Balanced split: the first `n % shards` shards take one extra point.
                let base = n / shards;
                let extra = n % shards;
                let mut maps = Vec::with_capacity(shards);
                let mut start = 0usize;
                for s in 0..shards {
                    let len = base + usize::from(s < extra);
                    maps.push((start..start + len).map(|i| i as u32).collect());
                    start += len;
                }
                maps
            }
            Partitioner::Hash { .. } => {
                let mut maps: Vec<Vec<u32>> =
                    (0..shards).map(|_| Vec::with_capacity(n / shards + 1)).collect();
                for i in 0..n {
                    maps[(splitmix64(i as u64) % shards as u64) as usize].push(i as u32);
                }
                // Hashing can leave a shard empty only when n barely exceeds the shard
                // count; empty shards carry no points and are simply dropped.
                maps.retain(|ids| !ids.is_empty());
                maps
            }
        };
        Ok(id_maps)
    }
}

/// SplitMix64: a fast, well-distributed 64-bit mixer (Steele et al., the JDK's
/// `SplittableRandom` finalizer). Used as the shard-assignment hash so assignments are
/// stable across processes, platforms, and releases.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_valid_cover(maps: &[Vec<u32>], n: usize) {
        let mut seen = vec![false; n];
        for ids in maps {
            assert!(!ids.is_empty(), "no shard may be empty");
            assert!(ids.windows(2).all(|w| w[0] < w[1]), "id maps must be strictly increasing");
            for &id in ids {
                assert!(!seen[id as usize], "id {id} assigned twice");
                seen[id as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every id must be assigned");
    }

    #[test]
    fn contiguous_is_balanced_and_covering() {
        for (n, shards) in [(10, 3), (7, 7), (100, 8), (5, 1), (3, 9)] {
            let maps = Partitioner::Contiguous { shards }.assign(n).unwrap();
            assert_eq!(maps.len(), shards.min(n));
            assert_valid_cover(&maps, n);
            let max = maps.iter().map(Vec::len).max().unwrap();
            let min = maps.iter().map(Vec::len).min().unwrap();
            assert!(max - min <= 1, "contiguous split must balance to within one point");
        }
    }

    #[test]
    fn hash_covers_and_is_deterministic() {
        for (n, shards) in [(50, 4), (200, 8), (9, 3), (4, 16)] {
            let a = Partitioner::Hash { shards }.assign(n).unwrap();
            let b = Partitioner::Hash { shards }.assign(n).unwrap();
            assert_eq!(a, b, "hash assignment must be deterministic");
            assert_valid_cover(&a, n);
            assert!(a.len() <= shards.min(n));
        }
    }

    #[test]
    fn hash_spreads_points_roughly_evenly() {
        let maps = Partitioner::Hash { shards: 4 }.assign(10_000).unwrap();
        assert_eq!(maps.len(), 4);
        for ids in &maps {
            let fraction = ids.len() as f64 / 10_000.0;
            assert!((0.2..0.3).contains(&fraction), "shard holds {fraction} of the points");
        }
    }

    #[test]
    fn degenerate_inputs_are_typed_errors() {
        assert!(matches!(
            Partitioner::Contiguous { shards: 0 }.assign(10),
            Err(Error::InvalidParameter { .. })
        ));
        assert!(matches!(Partitioner::Hash { shards: 2 }.assign(0), Err(Error::EmptyDataSet)));
    }

    #[test]
    fn tags_round_trip() {
        for p in [Partitioner::Contiguous { shards: 3 }, Partitioner::Hash { shards: 5 }] {
            assert_eq!(Partitioner::from_tag(p.tag(), p.shards()), Some(p));
        }
        assert_eq!(Partitioner::from_tag(99, 2), None);
    }

    #[test]
    fn splitmix_mixes() {
        // Adjacent inputs land far apart (sanity check on the constants).
        let a = splitmix64(0);
        let b = splitmix64(1);
        assert_ne!(a, b);
        assert!((a ^ b).count_ones() > 8);
    }
}
