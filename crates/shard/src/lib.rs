//! # p2h-shard
//!
//! Sharded index serving: partition a [`p2h_core::PointSet`] across several
//! independently built indexes and answer every query with a deterministic fan-out
//! top-k merge whose result is **bit-identical** to a single index over the same
//! points.
//!
//! The crate provides three layers:
//!
//! * [`Partitioner`] — splits `n` points into shard id maps, either by contiguous
//!   ranges or by a deterministic hash of the point id; both produce per-shard
//!   local-position → global-id mappings that are strictly increasing, which is what
//!   makes the merge provably exact,
//! * [`ShardedIndex`] — one index per shard (built by [`ShardedIndexBuilder`], or
//!   restored from a `p2h-store` shard group) behind the ordinary
//!   [`p2h_core::P2hIndex`] trait: a query fans out over the shards (reusing one
//!   [`p2h_core::QueryScratch`] across the per-shard searches) and the per-shard top-k
//!   lists are merged with the total [`p2h_core::Neighbor`] order,
//! * persistence — [`ShardedIndex::save_into`] / [`ShardedIndex::load_from`] write and
//!   read the `p2h-store` shard-group layout (one checksummed snapshot per shard plus
//!   a map file), committed atomically through the store manifest.
//!
//! ## Why the merge is exact
//!
//! Every point's distance `|⟨x, q⟩|` is computed by the same kernels regardless of
//! which shard holds it (the blocked kernels are bit-identical per row to the
//! single-vector kernel, so strip boundaries do not matter). [`p2h_core::Neighbor`]
//! ordering is total (distance, then index), and each shard's id map is strictly
//! increasing, so a shard's local top-k *is* its global top-k restricted to the shard.
//! Each member of the global top-k therefore survives its own shard's top-k, and
//! sorting the concatenated per-shard lists by the total order yields exactly the
//! global top-k — same neighbor ids, same distance bits, for every shard count and
//! either partitioner.
//!
//! Candidate budgets (`SearchParams::candidate_limit`) are split by the global-id
//! prefix: shard `s` receives the number of its members with global id below the
//! budget. For [`p2h_core::LinearScan`] shards this reproduces the unsharded budgeted
//! scan bit-for-bit (both verify exactly the points `0..B`); for tree shards a budget
//! bounds the verified candidates per shard but the traversal order differs from an
//! unsharded tree, so budgeted tree results are approximate in the same sense the
//! paper's candidate-fraction knob is.
//!
//! ## Example
//!
//! ```
//! use p2h_core::{HyperplaneQuery, LinearScan, P2hIndex, PointSet, SearchParams};
//! use p2h_shard::{Partitioner, ShardIndexKind, ShardedIndexBuilder};
//!
//! let points = PointSet::augment(&[
//!     vec![0.0, 0.0],
//!     vec![1.0, 1.0],
//!     vec![4.0, 0.5],
//!     vec![2.0, -1.0],
//! ]).unwrap();
//!
//! let sharded = ShardedIndexBuilder::new(
//!     Partitioner::Hash { shards: 2 },
//!     ShardIndexKind::LinearScan,
//! ).build(&points).unwrap();
//!
//! let query = HyperplaneQuery::from_normal_and_bias(&[1.0, 1.0], -1.8).unwrap();
//! let sharded_answer = sharded.search(&query, &SearchParams::exact(2));
//! let unsharded_answer = LinearScan::new(points).search(&query, &SearchParams::exact(2));
//! assert_eq!(sharded_answer.neighbors, unsharded_answer.neighbors);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod builder;
mod partition;
mod persist;
mod sharded;

pub use builder::{ShardIndexKind, ShardedIndexBuilder};
pub use partition::Partitioner;
pub use sharded::{merge_topk, ShardedIndex};
