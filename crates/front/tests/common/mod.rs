//! Shared fixture for the front-end integration suites: a deterministic engine
//! carrying all three dispatchable entry kinds (plain trait-object, sharded,
//! live), plus the per-query oracle — `Engine::serve`/`serve_live` **alone**, the
//! exact baseline the coalescing bit-identity contract is stated against.

// Each integration binary compiles its own copy of this module and uses a
// different subset of it.
#![allow(dead_code)]

use std::sync::Arc;

use p2h_core::{HyperplaneQuery, LinearScan, PointSet, Scalar, SearchParams, SearchResult};
use p2h_engine::{BatchRequest, Engine};
use p2h_live::LiveIndex;
use p2h_shard::{Partitioner, ShardIndexKind, ShardedIndexBuilder};
use p2h_store::Store;

pub const RAW_DIM: usize = 8;

pub fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub fn unit_interval(x: &mut u64) -> Scalar {
    ((splitmix64(x) >> 11) as f64 / (1u64 << 53) as f64) as Scalar
}

pub fn synthetic_rows(n: usize, seed: u64) -> Vec<Vec<Scalar>> {
    let mut state = seed;
    (0..n).map(|_| (0..RAW_DIM).map(|_| unit_interval(&mut state) * 4.0 - 2.0).collect()).collect()
}

pub fn synthetic_queries(m: usize, seed: u64) -> Vec<(HyperplaneQuery, SearchParams)> {
    let mut state = seed ^ 0x5151_5151;
    (0..m)
        .map(|i| {
            let normal: Vec<Scalar> =
                (0..RAW_DIM).map(|_| unit_interval(&mut state) * 2.0 - 1.0).collect();
            let bias = unit_interval(&mut state) - 0.5;
            let query = HyperplaneQuery::from_normal_and_bias(&normal, bias)
                .expect("non-degenerate synthetic normal");
            let params = match i % 3 {
                0 => SearchParams::exact(10),
                1 => SearchParams::approximate(5, 64),
                _ => SearchParams::exact(3),
            };
            (query, params)
        })
        .collect()
}

/// An engine with one entry per dispatch path, plus the live store backing the
/// `"live"` entry (kept alive for the test's duration).
pub struct Fixture {
    pub engine: Arc<Engine>,
    pub queries: Vec<(HyperplaneQuery, SearchParams)>,
    store_dir: std::path::PathBuf,
}

impl Drop for Fixture {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.store_dir).ok();
    }
}

/// Entry names the fixture registers, one per dispatch path.
pub const ENTRIES: [&str; 3] = ["plain", "sharded", "live"];

pub fn fixture(tag: &str, seed: u64, points: usize, queries: usize) -> Fixture {
    let rows = synthetic_rows(points, seed);
    let point_set = PointSet::augment(&rows).expect("non-empty rows");
    let engine = Engine::new(2);
    engine.registry().register("plain", LinearScan::new(point_set.clone()));
    engine.registry().register_sharded(
        "sharded",
        ShardedIndexBuilder::new(Partitioner::Hash { shards: 3 }, ShardIndexKind::LinearScan)
            .with_seed(seed)
            .build(&point_set)
            .expect("sharded build"),
    );
    let store_dir =
        std::env::temp_dir().join(format!("p2h-front-{tag}-{}-{seed}", std::process::id()));
    std::fs::remove_dir_all(&store_dir).ok();
    let store = Store::create(&store_dir).expect("create live store");
    let live = LiveIndex::create(&store, "live", RAW_DIM + 1).expect("create live index");
    live.insert_batch(&rows).expect("insert rows");
    engine.register_live("live", live);
    Fixture { engine: Arc::new(engine), queries: synthetic_queries(queries, seed), store_dir }
}

/// The oracle: the same query served **alone** through the engine's own path for
/// that entry kind — precisely the baseline the front-end must be bit-identical to.
pub fn serve_alone(
    engine: &Engine,
    entry: &str,
    query: &HyperplaneQuery,
    params: &SearchParams,
) -> SearchResult {
    let request = BatchRequest::new(vec![query.clone()], params.clone());
    let mut response = if entry == "live" {
        engine.serve_live(entry, &request).expect("oracle serve_live")
    } else {
        engine.serve(entry, &request).expect("oracle serve")
    };
    response.results.pop().expect("one query, one result")
}

/// Bit-exact comparison: neighbor ids and raw `f32` distance bits.
pub fn assert_bits(got: &SearchResult, want: &SearchResult, context: &str) {
    assert_eq!(got.neighbors.len(), want.neighbors.len(), "{context}: neighbor count");
    for (rank, (g, w)) in got.neighbors.iter().zip(&want.neighbors).enumerate() {
        assert!(
            g.index == w.index && g.distance.to_bits() == w.distance.to_bits(),
            "{context}: rank {rank}: front ({}, {:#010x}) != alone ({}, {:#010x})",
            g.index,
            g.distance.to_bits(),
            w.index,
            w.distance.to_bits()
        );
    }
}
