//! Satellite 3 — coalescing correctness as a property.
//!
//! Any mix of concurrent clients, batching policy (`max_batch`/`max_delay`), entry
//! kind (plain / sharded / live), and pipelining depth must produce answers
//! **bit-identical** (ids + `f32` distance bits) to `Engine::serve`/`serve_live`
//! run on the same query *alone*. The CI front job re-runs this suite under
//! `P2H_FORCE_SCALAR=1` and both `P2H_STORE_MMAP` modes, so the property also
//! covers the SIMD-vs-scalar and load-mode axes.

mod common;

use std::time::Duration;

use common::{assert_bits, fixture, serve_alone, ENTRIES};
use p2h_front::{FrontClient, FrontConfig, FrontServer};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn coalesced_answers_are_bit_identical_to_serving_alone(
        seed in 0u64..1_000_000,
        clients in 1usize..4,
        waves in 1usize..3,
        max_batch in 1usize..9,
        delay_idx in 0usize..3,
        entry_mix in 0usize..3,
    ) {
        let fix = fixture("coalesce", seed, 240, 12);
        let config = FrontConfig {
            loops: 2,
            max_batch,
            max_delay: Duration::from_micros([0u64, 120, 900][delay_idx]),
            queue_depth: 4096,
            threads: 2,
        };
        let handle = FrontServer::new(fix.engine.clone(), config)
            .serve("127.0.0.1:0")
            .expect("serve");
        let addr = handle.addr().to_string();

        std::thread::scope(|scope| {
            for worker in 0..clients {
                let addr = &addr;
                let fix = &fix;
                scope.spawn(move || {
                    // Each worker targets one entry kind; the mix offset rotates
                    // which, so batches interleave different indexes in the queue.
                    let entry = ENTRIES[(worker + entry_mix) % ENTRIES.len()];
                    let mut client = FrontClient::connect(addr).expect("connect");
                    for wave in 0..waves {
                        let outcomes = client
                            .query_many(entry, &fix.queries, 0)
                            .expect("pipelined wave");
                        for (position, outcome) in outcomes.into_iter().enumerate() {
                            let (query, params) = &fix.queries[position];
                            let got = outcome.unwrap_or_else(|(code, message)| {
                                panic!("worker {worker} wave {wave} q{position}: {code}: {message}")
                            });
                            let want = serve_alone(&fix.engine, entry, query, params);
                            assert_bits(
                                &got,
                                &want,
                                &format!("{entry} worker {worker} wave {wave} q{position}"),
                            );
                        }
                    }
                });
            }
        });
        handle.shutdown();
    }
}

/// The non-property smoke leg: every entry kind over one server, single client,
/// with coalescing wide open — quick signal when the property harness is skipped.
#[test]
fn every_entry_kind_serves_bit_identically_through_the_front() {
    let fix = fixture("smoke", 0xABCD, 300, 16);
    let handle = FrontServer::new(fix.engine.clone(), FrontConfig::default())
        .serve("127.0.0.1:0")
        .expect("serve");
    let mut client = FrontClient::connect(&handle.addr().to_string()).expect("connect");
    for entry in ENTRIES {
        let outcomes = client.query_many(entry, &fix.queries, 0).expect("wave");
        for (position, outcome) in outcomes.into_iter().enumerate() {
            let (query, params) = &fix.queries[position];
            let got = outcome.expect("typed success");
            assert_bits(
                &got,
                &serve_alone(&fix.engine, entry, query, params),
                &format!("{entry} q{position}"),
            );
        }
    }
    handle.shutdown();
}
