//! Admission control: overload and lapsed deadlines shed with **typed** errors —
//! never a silent drop, never a hang, and never a wrong answer for the requests
//! that were admitted.

mod common;

use std::time::{Duration, Instant};

use common::{assert_bits, fixture, serve_alone};
use p2h_front::{FrontClient, FrontConfig, FrontServer};
use p2h_net::ErrorCode;

#[test]
fn a_full_queue_sheds_typed_overloaded_and_serves_what_it_admitted() {
    let fix = fixture("overload", 0x0F10, 200, 6);
    // Depth 1 with a long-but-bounded delay: the first pipelined query occupies
    // the queue while it waits for batch-mates, so every later arrival in the
    // same wave is refused at admission.
    let config = FrontConfig {
        loops: 1,
        max_batch: 64,
        max_delay: Duration::from_millis(300),
        queue_depth: 1,
        threads: 2,
    };
    let handle = FrontServer::new(fix.engine.clone(), config).serve("127.0.0.1:0").expect("serve");
    let mut client = FrontClient::connect(&handle.addr().to_string()).expect("connect");

    let outcomes = client.query_many("plain", &fix.queries, 0).expect("pipelined wave");
    let (mut served, mut shed) = (0usize, 0usize);
    for (position, outcome) in outcomes.into_iter().enumerate() {
        match outcome {
            Ok(result) => {
                served += 1;
                let (query, params) = &fix.queries[position];
                assert_bits(
                    &result,
                    &serve_alone(&fix.engine, "plain", query, params),
                    &format!("admitted q{position}"),
                );
            }
            Err((code, message)) => {
                shed += 1;
                assert_eq!(
                    code,
                    ErrorCode::Overloaded,
                    "q{position} shed with the wrong code: {message}"
                );
            }
        }
    }
    assert!(served >= 1, "the queue admitted at least its depth");
    assert!(shed >= 1, "a depth-1 queue cannot admit a whole pipelined wave");
    handle.shutdown();
}

#[test]
fn a_lapsed_queue_deadline_comes_back_as_deadline_exceeded() {
    let fix = fixture("deadline", 0x0F11, 200, 1);
    // A lone query can never fill max_batch, and the delay window far exceeds its
    // deadline — so the deadline must lapse *in the queue*, deterministically.
    let config = FrontConfig {
        loops: 1,
        max_batch: 64,
        max_delay: Duration::from_secs(30),
        queue_depth: 64,
        threads: 2,
    };
    let handle = FrontServer::new(fix.engine.clone(), config).serve("127.0.0.1:0").expect("serve");
    let mut client = FrontClient::connect(&handle.addr().to_string()).expect("connect");

    let (query, params) = &fix.queries[0];
    let start = Instant::now();
    let outcome = client.query("plain", query, params, 40).expect("transport ok");
    let elapsed = start.elapsed();
    let (code, _message) = outcome.expect_err("the deadline must lapse before max_delay");
    assert_eq!(code, ErrorCode::DeadlineExceeded);
    assert!(
        elapsed < Duration::from_secs(20),
        "the shed must arrive at deadline time, not after max_delay ({elapsed:?})"
    );
    handle.shutdown();
}

#[test]
fn unknown_index_and_malformed_query_get_typed_bad_request() {
    let fix = fixture("badreq", 0x0F12, 120, 2);
    let handle = FrontServer::new(fix.engine.clone(), FrontConfig::default())
        .serve("127.0.0.1:0")
        .expect("serve");
    let mut client = FrontClient::connect(&handle.addr().to_string()).expect("connect");

    let (query, params) = &fix.queries[0];
    let (code, message) = client
        .query("no-such-index", query, params, 0)
        .expect("transport ok")
        .expect_err("an unknown index is a per-request failure, not a connection failure");
    assert_eq!(code, ErrorCode::BadRequest, "{message}");

    // The same connection keeps working afterwards — typed errors are not fatal.
    let ok = client.query("plain", query, params, 0).expect("transport ok").expect("served");
    assert_bits(&ok, &serve_alone(&fix.engine, "plain", query, params), "post-error query");
    handle.shutdown();
}
