//! Zero-downtime reload: a `Reload` request cold-starts a fresh engine from the
//! snapshot store and swaps it in **under live traffic** — zero failed requests,
//! every answer bit-identical, before, during, and after the swap.

mod common;

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

use common::{assert_bits, synthetic_queries, synthetic_rows};
use p2h_core::{LinearScan, P2hIndex, PointSet, QueryScratch};
use p2h_engine::Engine;
use p2h_front::{FrontClient, FrontConfig, FrontServer};
use p2h_net::{ErrorCode, NetError};
use p2h_shard::{Partitioner, ShardIndexKind, ShardedIndexBuilder};
use p2h_store::Store;

#[test]
fn reload_under_live_traffic_fails_nothing_and_drifts_no_bit() {
    let seed = 0x51AB;
    let rows = synthetic_rows(300, seed);
    let points = PointSet::augment(&rows).expect("rows");
    let queries = synthetic_queries(10, seed);

    let store_dir = std::env::temp_dir().join(format!("p2h-front-reload-{}", std::process::id()));
    std::fs::remove_dir_all(&store_dir).ok();
    let store = Store::create(&store_dir).expect("create store");
    ShardedIndexBuilder::new(Partitioner::Hash { shards: 3 }, ShardIndexKind::LinearScan)
        .with_seed(seed)
        .build(&points)
        .expect("build")
        .save_into(&store, "main")
        .expect("save");

    // The oracle is a plain local scan — the store snapshot holds linear-scan
    // shards, which are bit-identical to it by the shard crate's own contract.
    let scan = LinearScan::new(points.clone());
    let mut scratch = QueryScratch::new();
    let oracle: Vec<_> =
        queries.iter().map(|(q, p)| scan.search_with_scratch(q, p, &mut scratch)).collect();

    let handle = FrontServer::from_store(&store_dir, FrontConfig::default())
        .expect("cold start")
        .serve("127.0.0.1:0")
        .expect("serve");
    let addr = handle.addr().to_string();

    let stop = AtomicBool::new(false);
    let served = AtomicU64::new(0);
    std::thread::scope(|scope| {
        // Four traffic threads hammer the front while the main thread reloads.
        // Any transport error, typed error, or bit of drift panics the worker.
        for worker in 0..4usize {
            let (addr, queries, oracle, stop, served) = (&addr, &queries, &oracle, &stop, &served);
            scope.spawn(move || {
                let mut client = FrontClient::connect(addr).expect("connect");
                while !stop.load(Ordering::Relaxed) {
                    let outcomes = client.query_many("main", queries, 0).expect("transport");
                    for (position, outcome) in outcomes.into_iter().enumerate() {
                        let got = outcome.unwrap_or_else(|(code, message)| {
                            panic!(
                                "worker {worker} q{position} failed mid-reload: {code}: {message}"
                            )
                        });
                        assert_bits(
                            &got,
                            &oracle[position],
                            &format!("worker {worker} q{position}"),
                        );
                        served.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }

        let mut admin = FrontClient::connect(&addr).expect("connect admin");
        for round in 0..3 {
            std::thread::sleep(Duration::from_millis(40));
            let entries = admin.reload().unwrap_or_else(|e| panic!("reload {round}: {e}"));
            assert_eq!(entries, 1, "the fresh engine registered the snapshot entry");
        }
        std::thread::sleep(Duration::from_millis(40));
        stop.store(true, Ordering::Relaxed);
    });

    assert!(
        served.load(Ordering::Relaxed) > 0,
        "the traffic threads actually exercised the swap window"
    );
    // The handle observes the swapped engine, not the boot-time one.
    assert_eq!(handle.engine().registry().len(), 1);
    handle.shutdown();
    std::fs::remove_dir_all(&store_dir).ok();
}

#[test]
fn reload_without_a_store_is_a_typed_error() {
    let engine = std::sync::Arc::new(Engine::new(1));
    let handle =
        FrontServer::new(engine, FrontConfig::default()).serve("127.0.0.1:0").expect("serve");
    let mut client = FrontClient::connect(&handle.addr().to_string()).expect("connect");
    match client.reload() {
        Err(NetError::Remote { code: ErrorCode::BadRequest, .. }) => {}
        other => panic!("expected a typed BadRequest, got {other:?}"),
    }
    handle.shutdown();
}
