//! Satellite 1 — the front-end fault matrix.
//!
//! Deterministic faults (`P2H_FAULTS` semantics, installed programmatically) fire
//! at the front-end's four fail points — `front.accept`, `front.read`,
//! `front.write`, `front.queue` — while a retrying client drives traffic. The
//! contract under every mix: the client ends with an answer **bit-identical** to
//! serving the query alone, or a **typed** error. Never a hang (every read is
//! bounded), never a silently wrong bit.
//!
//! The fault registry is process-global, so tests serialize on one mutex and
//! clear rules on drop even when panicking.

mod common;

use std::sync::{Mutex, MutexGuard};

use common::{assert_bits, fixture, serve_alone, Fixture, ENTRIES};
use p2h_front::{FrontConfig, FrontServer, RetryingClient};
use p2h_net::ErrorCode;
use p2h_obs::fault::{self, FaultRule};
use p2h_obs::FaultKind;

static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn serialize() -> MutexGuard<'static, ()> {
    FAULT_LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Clears installed rules even when the test body panics.
struct FaultScope;

impl FaultScope {
    fn install(rules: Vec<FaultRule>) -> Self {
        fault::set_rules(rules);
        FaultScope
    }
}

impl Drop for FaultScope {
    fn drop(&mut self) {
        fault::set_rules(Vec::new());
    }
}

/// Drives every fixture query against every entry kind through a retrying client
/// and checks each completed answer bit-for-bit. `DeadlineExceeded` is the only
/// acceptable typed failure (final by contract); anything else fails the run.
fn drive_checked(fix: &Fixture, addr: &str, context: &str) {
    let mut client = RetryingClient::new(addr);
    client.max_attempts = 24;
    for entry in ENTRIES {
        for (position, (query, params)) in fix.queries.iter().enumerate() {
            match client.query(entry, query, params, 0) {
                Ok(Ok(got)) => assert_bits(
                    &got,
                    &serve_alone(&fix.engine, entry, query, params),
                    &format!("{context}: {entry} q{position}"),
                ),
                Ok(Err((ErrorCode::DeadlineExceeded, _))) => {}
                Ok(Err((code, message))) => {
                    panic!(
                        "{context}: {entry} q{position}: unexpected typed error {code}: {message}"
                    )
                }
                Err(e) => panic!("{context}: {entry} q{position}: retries exhausted: {e}"),
            }
        }
    }
}

fn run_matrix_cell(point: &str, kind: FaultKind, rate: f64, seed: u64) {
    let _guard = serialize();
    let fix = fixture("chaos", seed ^ 0xC4A0, 200, 5);
    let handle = FrontServer::new(fix.engine.clone(), FrontConfig::default())
        .serve("127.0.0.1:0")
        .expect("serve");
    let addr = handle.addr().to_string();
    {
        let _scope = FaultScope::install(vec![FaultRule::new(point, kind, rate, seed)]);
        drive_checked(&fix, &addr, &format!("{point}:{kind:?}@{rate}"));
    }
    // Faults cleared: the same server must serve cleanly afterwards.
    drive_checked(&fix, &addr, &format!("{point} aftermath"));
    handle.shutdown();
}

#[test]
fn accept_refusal_is_absorbed_by_reconnects() {
    run_matrix_cell("front.accept", FaultKind::Refuse, 0.4, 11);
}

#[test]
fn read_disconnects_are_absorbed_by_reconnects() {
    run_matrix_cell("front.read", FaultKind::Disconnect, 0.15, 12);
}

#[test]
fn read_corruption_is_caught_by_crc_and_retried() {
    run_matrix_cell("front.read", FaultKind::Corrupt, 0.15, 13);
}

#[test]
fn truncated_reads_never_produce_a_wrong_answer() {
    run_matrix_cell("front.read", FaultKind::Truncate, 0.1, 14);
}

#[test]
fn write_disconnects_are_absorbed_by_reconnects() {
    run_matrix_cell("front.write", FaultKind::Disconnect, 0.15, 15);
}

#[test]
fn write_corruption_is_caught_by_the_client_crc() {
    run_matrix_cell("front.write", FaultKind::Corrupt, 0.15, 16);
}

#[test]
fn truncated_writes_never_produce_a_wrong_answer() {
    run_matrix_cell("front.write", FaultKind::Truncate, 0.1, 17);
}

#[test]
fn admission_refusals_surface_as_overloaded_and_retry_through() {
    run_matrix_cell("front.queue", FaultKind::Refuse, 0.3, 18);
}

#[test]
fn a_mixed_storm_across_every_fail_point_still_converges() {
    let _guard = serialize();
    let fix = fixture("storm", 0x5701, 200, 5);
    let handle = FrontServer::new(fix.engine.clone(), FrontConfig::default())
        .serve("127.0.0.1:0")
        .expect("serve");
    let addr = handle.addr().to_string();
    {
        let _scope = FaultScope::install(vec![
            FaultRule::new("front.accept", FaultKind::Refuse, 0.2, 21),
            FaultRule::new("front.read", FaultKind::Corrupt, 0.05, 22),
            FaultRule::new("front.write", FaultKind::Disconnect, 0.05, 23),
            FaultRule::new("front.queue", FaultKind::Refuse, 0.2, 24),
        ]);
        drive_checked(&fix, &addr, "mixed storm");
    }
    drive_checked(&fix, &addr, "storm aftermath");
    handle.shutdown();
}
