//! A minimal `poll(2)` readiness shim — the event-loop primitive under the
//! front-end, and this crate's **only** module containing `unsafe` (mirroring the
//! single-unsafe-module rule `p2h-store` uses for `mmap`).
//!
//! No async runtime exists offline, so the front-end multiplexes nonblocking
//! sockets the classic way: one `pollfd` array per event loop, rebuilt each
//! iteration (connection counts are small enough that the rebuild is noise), with
//! a [`WakePipe`] — a nonblocking `UnixStream` pair, no extra syscall surface —
//! letting other threads interrupt a sleeping `poll`.
//!
//! On non-Unix targets the shim degrades to "sleep briefly, report everything
//! ready": correctness is preserved (every fd gets serviced), only wakeup latency
//! and idle CPU suffer — acceptable for a platform the workspace does not target.

/// Interest/readiness: data to read (`POLLIN` in `<poll.h>`).
pub const POLL_IN: i16 = 0x001;
/// Interest/readiness: writable without blocking (`POLLOUT`).
pub const POLL_OUT: i16 = 0x004;
/// Readiness only: error condition (`POLLERR`; always reported, never requested).
pub const POLL_ERR: i16 = 0x008;
/// Readiness only: peer hung up (`POLLHUP`).
pub const POLL_HUP: i16 = 0x010;

#[cfg(unix)]
mod imp {
    use std::os::fd::RawFd;

    /// `struct pollfd` from `<poll.h>`. The layout is fixed by POSIX: the fd, the
    /// requested events, and the kernel-filled returned events.
    #[repr(C)]
    #[derive(Debug, Clone, Copy)]
    struct PollFd {
        fd: RawFd,
        events: i16,
        revents: i16,
    }

    extern "C" {
        /// `int poll(struct pollfd *fds, nfds_t nfds, int timeout);`
        fn poll(
            fds: *mut PollFd,
            nfds: std::os::raw::c_ulong,
            timeout: std::os::raw::c_int,
        ) -> std::os::raw::c_int;
    }

    /// A reusable `pollfd` array. `clear` + `push` each iteration, then [`Self::wait`].
    #[derive(Debug, Default)]
    pub struct PollSet {
        fds: Vec<PollFd>,
    }

    impl PollSet {
        /// An empty set.
        pub fn new() -> Self {
            Self::default()
        }

        /// Forgets every registered fd (keeps the allocation).
        pub fn clear(&mut self) {
            self.fds.clear();
        }

        /// Registers `fd` with the given interest mask, returning its slot index for
        /// [`Self::revents`] after the wait.
        pub fn push(&mut self, fd: RawFd, events: i16) -> usize {
            self.fds.push(PollFd { fd, events, revents: 0 });
            self.fds.len() - 1
        }

        /// Blocks until at least one fd is ready or `timeout_ms` elapses (`0` =
        /// return immediately). Returns the number of ready fds; `EINTR` is retried
        /// internally (a signal is not readiness).
        pub fn wait(&mut self, timeout_ms: i32) -> std::io::Result<usize> {
            loop {
                // SAFETY: `self.fds` is a live, exclusively borrowed Vec of
                // `#[repr(C)]` PollFd structs; the pointer/length pair describes
                // exactly that allocation for the duration of the call, and the
                // kernel only writes the `revents` fields within it.
                let rc = unsafe {
                    poll(self.fds.as_mut_ptr(), self.fds.len() as std::os::raw::c_ulong, timeout_ms)
                };
                if rc >= 0 {
                    return Ok(rc as usize);
                }
                let err = std::io::Error::last_os_error();
                if err.kind() != std::io::ErrorKind::Interrupted {
                    return Err(err);
                }
            }
        }

        /// The readiness bits the kernel reported for slot `index`.
        pub fn revents(&self, index: usize) -> i16 {
            self.fds[index].revents
        }
    }
}

#[cfg(not(unix))]
mod imp {
    /// Degenerate fallback: no fd multiplexing, every registered slot reports ready
    /// after a short sleep. Keeps the event loops correct (if hot) off-Unix.
    #[derive(Debug, Default)]
    pub struct PollSet {
        slots: usize,
    }

    impl PollSet {
        pub fn new() -> Self {
            Self::default()
        }

        pub fn clear(&mut self) {
            self.slots = 0;
        }

        pub fn push(&mut self, _fd: i32, _events: i16) -> usize {
            self.slots += 1;
            self.slots - 1
        }

        pub fn wait(&mut self, timeout_ms: i32) -> std::io::Result<usize> {
            std::thread::sleep(std::time::Duration::from_millis(timeout_ms.clamp(0, 5) as u64));
            Ok(self.slots)
        }

        pub fn revents(&self, _index: usize) -> i16 {
            super::POLL_IN | super::POLL_OUT
        }
    }
}

pub use imp::PollSet;

/// A cross-thread wakeup channel for a sleeping [`PollSet::wait`]: the read end is
/// registered `POLL_IN` in the loop's set; any thread holding a [`Waker`] writes one
/// byte to end the sleep early. Built on a nonblocking `UnixStream` pair, so no
/// extra unsafe surface beyond `poll` itself.
#[derive(Debug)]
pub struct WakePipe {
    #[cfg(unix)]
    read: std::os::unix::net::UnixStream,
    #[cfg(unix)]
    write: std::os::unix::net::UnixStream,
}

/// The writable half of a [`WakePipe`], cloneable into any thread.
#[derive(Debug)]
pub struct Waker {
    #[cfg(unix)]
    write: std::os::unix::net::UnixStream,
}

impl WakePipe {
    /// A fresh pipe; both ends nonblocking.
    pub fn new() -> std::io::Result<Self> {
        #[cfg(unix)]
        {
            let (read, write) = std::os::unix::net::UnixStream::pair()?;
            read.set_nonblocking(true)?;
            write.set_nonblocking(true)?;
            Ok(Self { read, write })
        }
        #[cfg(not(unix))]
        Ok(Self {})
    }

    /// The fd to register `POLL_IN` in the loop's [`PollSet`].
    #[cfg(unix)]
    pub fn poll_fd(&self) -> std::os::fd::RawFd {
        use std::os::fd::AsRawFd;
        self.read.as_raw_fd()
    }

    /// Fallback fd for the degenerate poll set.
    #[cfg(not(unix))]
    pub fn poll_fd(&self) -> i32 {
        -1
    }

    /// Drains every pending wake byte (level-triggered `poll` would otherwise spin).
    pub fn drain(&self) {
        #[cfg(unix)]
        {
            use std::io::Read;
            let mut sink = [0u8; 64];
            // Nonblocking: WouldBlock ends the drain; any other error means the
            // write half is gone, which shutdown handles elsewhere.
            while matches!((&self.read).read(&mut sink), Ok(n) if n > 0) {}
        }
    }

    /// A handle other threads use to interrupt this pipe's poll loop.
    pub fn waker(&self) -> std::io::Result<Waker> {
        #[cfg(unix)]
        {
            Ok(Waker { write: self.write.try_clone()? })
        }
        #[cfg(not(unix))]
        Ok(Waker {})
    }
}

impl Waker {
    /// Ends the target loop's current (or next) `poll` sleep. A full pipe counts as
    /// already-woken, so the result is ignored by design.
    pub fn wake(&self) {
        #[cfg(unix)]
        {
            use std::io::Write;
            let _ = (&self.write).write(&[1u8]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(unix)]
    #[test]
    fn poll_reports_readable_sockets_and_wake_pipes() {
        use std::io::Write;
        use std::os::fd::AsRawFd;

        let (mut a, b) = std::os::unix::net::UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        let mut set = PollSet::new();

        // Nothing readable yet: a zero-timeout wait reports no readiness.
        let slot = set.push(b.as_raw_fd(), POLL_IN);
        assert_eq!(set.wait(0).unwrap(), 0);
        assert_eq!(set.revents(slot) & POLL_IN, 0);

        // One written byte flips the same fd readable.
        a.write_all(&[9]).unwrap();
        set.clear();
        let slot = set.push(b.as_raw_fd(), POLL_IN);
        assert_eq!(set.wait(1000).unwrap(), 1);
        assert_ne!(set.revents(slot) & POLL_IN, 0);
    }

    #[cfg(unix)]
    #[test]
    fn waker_interrupts_a_sleeping_poll() {
        let pipe = WakePipe::new().unwrap();
        let waker = pipe.waker().unwrap();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(30));
            waker.wake();
        });
        let mut set = PollSet::new();
        let slot = set.push(pipe.poll_fd(), POLL_IN);
        let start = std::time::Instant::now();
        // Without the wake this would sleep the full 10 s and fail the elapsed check.
        assert_eq!(set.wait(10_000).unwrap(), 1);
        assert_ne!(set.revents(slot) & POLL_IN, 0);
        assert!(start.elapsed() < std::time::Duration::from_secs(5));
        pipe.drain();
        assert_eq!(set.wait(0).unwrap(), 0, "drain consumed the wake byte");
        handle.join().unwrap();
    }
}
