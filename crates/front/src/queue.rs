//! The coalescing queue: concurrent single queries become engine batches under a
//! `max_batch` / `max_delay` policy, with bounded-depth admission control.
//!
//! Invariants the rest of the crate leans on:
//!
//! * **Bounded**: [`CoalesceQueue::push`] refuses (returning the item) once
//!   `queue_depth` queries wait — the caller sheds with a typed `Overloaded`
//!   error. Nothing is ever silently dropped.
//! * **Deadline-aware**: a query whose deadline expires while queued comes back
//!   through [`BatchTake::expired`], never inside a served batch.
//! * **Order-preserving per index**: a batch takes the oldest waiting queries of
//!   the head-of-line index, in arrival order. Queries for other indexes keep
//!   their positions for the next take.
//!
//! The queue knows nothing about sockets or engines; it moves [`Pending`] values
//! between the event loops (producers) and the batcher thread (consumer).

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use p2h_net::WireQuery;

/// One admitted front query waiting to be batched.
#[derive(Debug)]
pub(crate) struct Pending {
    /// Which event loop owns the connection.
    pub loop_id: usize,
    /// The connection within that loop.
    pub conn_id: u64,
    /// The client's request id, echoed in the reply.
    pub request_id: u64,
    /// Registered index name this query targets.
    pub index: String,
    /// Absolute queueing deadline, if the client set one.
    pub deadline: Option<Instant>,
    /// The query and its effective search parameters.
    pub query: WireQuery,
    /// When admission accepted the query (feeds `p2h_front_queue_wait_ns`).
    pub enqueued: Instant,
}

impl Pending {
    fn expired(&self, now: Instant) -> bool {
        self.deadline.is_some_and(|deadline| now >= deadline)
    }
}

/// What one [`CoalesceQueue::next_batch`] call hands the batcher.
#[derive(Debug)]
pub(crate) struct BatchTake {
    /// The index every item in `items` targets.
    pub index: String,
    /// The batch to serve, in arrival order. May be empty when the take only
    /// carries expirations.
    pub items: Vec<Pending>,
    /// Queries whose deadline lapsed while queued — shed, not served.
    pub expired: Vec<Pending>,
}

#[derive(Debug, Default)]
struct QueueState {
    waiting: VecDeque<Pending>,
    shutdown: bool,
}

/// The bounded, deadline-aware coalescing queue. One per server.
#[derive(Debug)]
pub(crate) struct CoalesceQueue {
    state: Mutex<QueueState>,
    arrived: Condvar,
    depth: usize,
    max_batch: usize,
    max_delay: Duration,
}

impl CoalesceQueue {
    pub fn new(depth: usize, max_batch: usize, max_delay: Duration) -> Self {
        Self {
            state: Mutex::new(QueueState::default()),
            arrived: Condvar::new(),
            depth: depth.max(1),
            max_batch: max_batch.max(1),
            max_delay,
        }
    }

    /// Queries currently waiting.
    pub fn len(&self) -> usize {
        self.state.lock().expect("coalesce queue poisoned").waiting.len()
    }

    /// Admission: accepts the query unless `depth` queries already wait, in which
    /// case the item comes straight back (`Err`) for the caller to shed with a
    /// typed `Overloaded` error.
    // The Err variant carries the whole Pending by design: the caller needs the
    // request id and connection routing back to answer the shed, and boxing the
    // rare rejection path would cost an allocation on the common admit path too.
    #[allow(clippy::result_large_err)]
    pub fn push(&self, pending: Pending) -> Result<(), Pending> {
        let mut state = self.state.lock().expect("coalesce queue poisoned");
        if state.shutdown || state.waiting.len() >= self.depth {
            return Err(pending);
        }
        state.waiting.push_back(pending);
        drop(state);
        self.arrived.notify_one();
        Ok(())
    }

    /// Blocks until the policy yields a batch (or expirations to shed), or until
    /// [`CoalesceQueue::shutdown`]. `None` means the queue is shut down and drained.
    pub fn next_batch(&self) -> Option<BatchTake> {
        let mut state = self.state.lock().expect("coalesce queue poisoned");
        loop {
            if state.shutdown && state.waiting.is_empty() {
                return None;
            }
            let now = Instant::now();
            // Sweep lapsed deadlines out of the whole queue first: an expired query
            // must be shed promptly even when it sits behind another index.
            let mut expired = Vec::new();
            if state.waiting.iter().any(|pending| pending.expired(now)) {
                let mut kept = VecDeque::with_capacity(state.waiting.len());
                for pending in state.waiting.drain(..) {
                    if pending.expired(now) {
                        expired.push(pending);
                    } else {
                        kept.push_back(pending);
                    }
                }
                state.waiting = kept;
            }
            if !expired.is_empty() {
                return Some(BatchTake { index: String::new(), items: Vec::new(), expired });
            }
            let Some(head) = state.waiting.front() else {
                state = self.arrived.wait(state).expect("coalesce queue poisoned");
                continue;
            };
            let head_index = head.index.clone();
            let head_age = now.saturating_duration_since(head.enqueued);
            let matching =
                state.waiting.iter().filter(|pending| pending.index == head_index).count();
            if matching >= self.max_batch || head_age >= self.max_delay || state.shutdown {
                let mut items = Vec::with_capacity(matching.min(self.max_batch));
                let mut kept = VecDeque::with_capacity(state.waiting.len());
                for pending in state.waiting.drain(..) {
                    if pending.index == head_index && items.len() < self.max_batch {
                        items.push(pending);
                    } else {
                        kept.push_back(pending);
                    }
                }
                state.waiting = kept;
                return Some(BatchTake { index: head_index, items, expired });
            }
            // Wait for batch-mates, but never past the head's delay budget — and
            // never past the earliest queued deadline, so expirations shed on time.
            let mut wake_in = self.max_delay - head_age;
            for pending in &state.waiting {
                if let Some(deadline) = pending.deadline {
                    wake_in = wake_in.min(deadline.saturating_duration_since(now));
                }
            }
            let (guard, _timeout) = self
                .arrived
                .wait_timeout(state, wake_in.max(Duration::from_micros(50)))
                .expect("coalesce queue poisoned");
            state = guard;
        }
    }

    /// Stops the queue: pushes start failing, and `next_batch` drains what is left
    /// then returns `None`.
    pub fn shutdown(&self) {
        self.state.lock().expect("coalesce queue poisoned").shutdown = true;
        self.arrived.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2h_core::SearchParams;

    fn pending(index: &str, request_id: u64, deadline: Option<Instant>) -> Pending {
        Pending {
            loop_id: 0,
            conn_id: 0,
            request_id,
            index: index.to_string(),
            deadline,
            query: WireQuery { coeffs: vec![1.0, 0.0], norm: 1.0, params: SearchParams::exact(1) },
            enqueued: Instant::now(),
        }
    }

    #[test]
    fn full_queue_refuses_instead_of_growing() {
        let queue = CoalesceQueue::new(2, 8, Duration::from_millis(50));
        assert!(queue.push(pending("a", 1, None)).is_ok());
        assert!(queue.push(pending("a", 2, None)).is_ok());
        let refused = queue.push(pending("a", 3, None)).unwrap_err();
        assert_eq!(refused.request_id, 3, "the refused item comes back for a typed shed");
        assert_eq!(queue.len(), 2);
    }

    #[test]
    fn full_batch_dispatches_without_waiting_for_the_delay() {
        let queue = CoalesceQueue::new(64, 3, Duration::from_secs(3600));
        for id in 0..5 {
            queue.push(pending("a", id, None)).unwrap();
        }
        let start = Instant::now();
        let take = queue.next_batch().unwrap();
        assert!(start.elapsed() < Duration::from_secs(10), "must not wait out the huge delay");
        assert_eq!(take.index, "a");
        let ids: Vec<u64> = take.items.iter().map(|p| p.request_id).collect();
        assert_eq!(ids, [0, 1, 2], "oldest first, capped at max_batch");
        assert_eq!(queue.len(), 2);
    }

    #[test]
    fn delay_expiry_dispatches_a_partial_batch() {
        let queue = CoalesceQueue::new(64, 1000, Duration::from_millis(20));
        queue.push(pending("a", 7, None)).unwrap();
        let take = queue.next_batch().unwrap();
        assert_eq!(take.items.len(), 1);
        assert_eq!(take.items[0].request_id, 7);
    }

    #[test]
    fn batches_are_per_index_and_keep_arrival_order() {
        let queue = CoalesceQueue::new(64, 8, Duration::ZERO);
        queue.push(pending("a", 1, None)).unwrap();
        queue.push(pending("b", 2, None)).unwrap();
        queue.push(pending("a", 3, None)).unwrap();
        let first = queue.next_batch().unwrap();
        assert_eq!(first.index, "a");
        assert_eq!(first.items.iter().map(|p| p.request_id).collect::<Vec<_>>(), [1, 3]);
        let second = queue.next_batch().unwrap();
        assert_eq!(second.index, "b");
        assert_eq!(second.items.iter().map(|p| p.request_id).collect::<Vec<_>>(), [2]);
    }

    #[test]
    fn lapsed_deadlines_come_back_as_expirations_not_batch_items() {
        let queue = CoalesceQueue::new(64, 8, Duration::from_millis(5));
        let past = Instant::now() - Duration::from_millis(1);
        queue.push(pending("a", 1, Some(past))).unwrap();
        queue.push(pending("a", 2, None)).unwrap();
        let take = queue.next_batch().unwrap();
        assert_eq!(take.expired.len(), 1);
        assert_eq!(take.expired[0].request_id, 1);
        assert!(take.items.is_empty(), "expirations shed before any batch forms");
        let served = queue.next_batch().unwrap();
        assert_eq!(served.items.iter().map(|p| p.request_id).collect::<Vec<_>>(), [2]);
    }

    #[test]
    fn shutdown_drains_then_ends() {
        let queue = CoalesceQueue::new(64, 8, Duration::from_secs(3600));
        queue.push(pending("a", 1, None)).unwrap();
        queue.shutdown();
        assert!(queue.push(pending("a", 2, None)).is_err(), "no admissions after shutdown");
        let take = queue.next_batch().unwrap();
        assert_eq!(take.items.len(), 1, "queued work still drains");
        assert!(queue.next_batch().is_none());
    }
}
