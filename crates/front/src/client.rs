//! Client side of the front-end protocol: a pipelining [`FrontClient`] plus a
//! [`RetryingClient`] wrapper that owns reconnects and `Overloaded` backoff — the
//! policy the chaos suite exercises: a transport fault or typed retryable error
//! becomes a retry, a final error (`DeadlineExceeded`, `BadRequest`) is returned,
//! and an answer is always bit-identical to serving the query alone.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use p2h_core::{HyperplaneQuery, SearchParams, SearchResult};
use p2h_net::wire::{frame_bytes, frame_from_buf};
use p2h_net::{ErrorCode, Message, NetError, NetResult, WireQuery, PROTOCOL_VERSION};

/// How long a blocking read waits before the client declares the server stuck.
/// Generous — it only fires when a fault swallowed a reply, and the retry layer
/// above turns it into a reconnect rather than a hang.
const READ_TIMEOUT: Duration = Duration::from_secs(10);

/// The outcome of one front request: the result, or the typed error the server
/// shed it with.
pub type FrontOutcome = Result<SearchResult, (ErrorCode, String)>;

/// A blocking client for one front-end connection. Requests are identified by a
/// client-chosen id, so several may be pipelined before reading any reply
/// ([`FrontClient::query_many`]); the front-end answers out of order and the
/// client demultiplexes.
#[derive(Debug)]
pub struct FrontClient {
    stream: TcpStream,
    read_buf: Vec<u8>,
    next_id: u64,
    /// Registry entries the server reported in its hello.
    entries: u32,
}

impl FrontClient {
    /// Connects and completes the version handshake.
    ///
    /// # Errors
    ///
    /// Transport failures, or [`NetError::Version`] when the server speaks a
    /// different protocol version.
    pub fn connect(addr: &str) -> NetResult<Self> {
        let stream =
            TcpStream::connect(addr).map_err(|_| NetError::Refused { addr: addr.to_string() })?;
        stream.set_nodelay(true).map_err(NetError::Io)?;
        stream.set_read_timeout(Some(READ_TIMEOUT)).map_err(NetError::Io)?;
        let mut client = Self { stream, read_buf: Vec::new(), next_id: 0, entries: 0 };
        client.send(&Message::Hello { version: PROTOCOL_VERSION })?;
        match client.recv()? {
            Message::HelloOk { version, shard_count, .. } => {
                if version != PROTOCOL_VERSION {
                    return Err(NetError::Version { ours: PROTOCOL_VERSION, theirs: version });
                }
                client.entries = shard_count;
                Ok(client)
            }
            Message::ErrorReply { code, message } => Err(NetError::Remote { code, message }),
            other => {
                Err(NetError::Malformed { context: format!("expected HelloOk, got {other:?}") })
            }
        }
    }

    /// Registry entries the server reported when this connection was made.
    pub fn entries(&self) -> u32 {
        self.entries
    }

    /// Serves one query against `index`. `deadline_ms` bounds the time the request
    /// may wait in the server's coalescing queue (`0` = no bound).
    ///
    /// # Errors
    ///
    /// Transport failures. Typed per-request errors (shed, unknown index, …) come
    /// back as the `Err` arm of the inner [`FrontOutcome`].
    pub fn query(
        &mut self,
        index: &str,
        query: &HyperplaneQuery,
        params: &SearchParams,
        deadline_ms: u64,
    ) -> NetResult<FrontOutcome> {
        let mut outcomes =
            self.query_many(index, &[(query.clone(), params.clone())], deadline_ms)?;
        Ok(outcomes.pop().expect("one request, one outcome"))
    }

    /// Pipelines every query before reading any reply, then demultiplexes by id.
    /// Outcomes are returned in request order regardless of completion order.
    ///
    /// # Errors
    ///
    /// Transport failures; per-request typed errors land in the outcomes.
    pub fn query_many(
        &mut self,
        index: &str,
        queries: &[(HyperplaneQuery, SearchParams)],
        deadline_ms: u64,
    ) -> NetResult<Vec<FrontOutcome>> {
        let first_id = self.next_id;
        for (query, params) in queries {
            let id = self.next_id;
            self.next_id += 1;
            self.send(&Message::FrontQuery {
                id,
                index: index.to_string(),
                deadline_ms,
                query: WireQuery::from_query(query, params),
            })?;
        }
        let mut outcomes: Vec<Option<FrontOutcome>> = vec![None; queries.len()];
        let mut remaining = queries.len();
        while remaining > 0 {
            let (id, outcome) = match self.recv()? {
                Message::FrontReply { id, result } => (id, Ok(result)),
                Message::FrontError { id, code, message } => (id, Err((code, message))),
                Message::ErrorReply { code, message } => {
                    // Connection-level refusal (malformed frame): no id to match.
                    return Err(NetError::Remote { code, message });
                }
                other => {
                    return Err(NetError::Malformed {
                        context: format!("expected a front reply, got {other:?}"),
                    })
                }
            };
            let position = id.checked_sub(first_id).map(|p| p as usize);
            match position.and_then(|p| outcomes.get_mut(p)) {
                Some(slot @ None) => {
                    *slot = Some(outcome);
                    remaining -= 1;
                }
                _ => {
                    return Err(NetError::Malformed {
                        context: format!("reply for unknown or duplicate request id {id}"),
                    })
                }
            }
        }
        Ok(outcomes.into_iter().map(|o| o.expect("counted")).collect())
    }

    /// Fetches the server's metrics registry in Prometheus text format.
    ///
    /// # Errors
    ///
    /// Transport failures or an unexpected reply.
    pub fn metrics(&mut self) -> NetResult<String> {
        let id = self.next_id;
        self.next_id += 1;
        self.send(&Message::MetricsRequest { id })?;
        match self.recv()? {
            Message::MetricsReply { id: got, text } if got == id => Ok(text),
            Message::FrontError { code, message, .. } => Err(NetError::Remote { code, message }),
            other => Err(NetError::Malformed {
                context: format!("expected MetricsReply, got {other:?}"),
            }),
        }
    }

    /// Asks the server to cold-start a fresh engine from its store and swap it in.
    /// Returns the number of manifest entries the fresh engine registered.
    ///
    /// # Errors
    ///
    /// Transport failures, or the typed error when the server has no store to
    /// reload from / the cold start failed (the previous engine keeps serving).
    pub fn reload(&mut self) -> NetResult<u32> {
        let id = self.next_id;
        self.next_id += 1;
        self.send(&Message::Reload { id })?;
        match self.recv()? {
            Message::ReloadOk { id: got, entries } if got == id => Ok(entries),
            Message::FrontError { code, message, .. } => Err(NetError::Remote { code, message }),
            other => {
                Err(NetError::Malformed { context: format!("expected ReloadOk, got {other:?}") })
            }
        }
    }

    fn send(&mut self, message: &Message) -> NetResult<()> {
        let bytes = frame_bytes(message);
        self.stream.write_all(&bytes).map_err(|e| match e.kind() {
            std::io::ErrorKind::BrokenPipe | std::io::ErrorKind::ConnectionReset => {
                NetError::Disconnected
            }
            _ => NetError::Io(e),
        })
    }

    fn recv(&mut self) -> NetResult<Message> {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            if let Some((message, consumed)) = frame_from_buf(&self.read_buf)? {
                self.read_buf.drain(..consumed);
                return Ok(message);
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(NetError::Disconnected),
                Ok(n) => self.read_buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Err(NetError::Disconnected)
                }
                Err(e) => return Err(NetError::Io(e)),
            }
        }
    }
}

/// Retry policy around [`FrontClient`]: reconnects on transport faults, backs off
/// and retries on [`ErrorCode::Overloaded`], and returns final typed errors
/// untouched. This is the client the chaos suite drives — under any injected
/// fault mix it must end with a bit-identical answer or a final typed error,
/// never a hang and never a wrong bit.
#[derive(Debug)]
pub struct RetryingClient {
    addr: String,
    inner: Option<FrontClient>,
    /// Attempts per request before giving up (connects and retryable errors each
    /// consume one).
    pub max_attempts: usize,
    /// Backoff after an `Overloaded` shed; doubles per consecutive shed.
    pub backoff: Duration,
}

impl RetryingClient {
    /// A retrying client for `addr`. No connection is made until the first call.
    pub fn new(addr: impl Into<String>) -> Self {
        Self { addr: addr.into(), inner: None, max_attempts: 12, backoff: Duration::from_millis(5) }
    }

    /// Serves one query, retrying transport faults (reconnect) and `Overloaded`
    /// sheds (backoff) up to `max_attempts`.
    ///
    /// # Errors
    ///
    /// The last transport error when attempts run out; final typed errors come
    /// back in the [`FrontOutcome`] without retry.
    pub fn query(
        &mut self,
        index: &str,
        query: &HyperplaneQuery,
        params: &SearchParams,
        deadline_ms: u64,
    ) -> NetResult<FrontOutcome> {
        let mut backoff = self.backoff;
        let mut last_err: Option<NetError> = None;
        for _ in 0..self.max_attempts.max(1) {
            let client = match self.connected() {
                Ok(client) => client,
                Err(e) => {
                    last_err = Some(e);
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(Duration::from_millis(200));
                    continue;
                }
            };
            match client.query(index, query, params, deadline_ms) {
                Ok(Err((ErrorCode::Overloaded, _))) => {
                    // Typed shed: the server is alive but full. Back off and retry.
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(Duration::from_millis(200));
                }
                Ok(outcome) => return Ok(outcome),
                Err(NetError::Remote { code, message }) => {
                    return Err(NetError::Remote { code, message })
                }
                Err(transport) => {
                    // Anything transport-shaped (disconnect, corrupt frame, timeout):
                    // drop the connection and dial fresh.
                    self.inner = None;
                    last_err = Some(transport);
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(Duration::from_millis(200));
                }
            }
        }
        Err(last_err.unwrap_or(NetError::Disconnected))
    }

    fn connected(&mut self) -> NetResult<&mut FrontClient> {
        if self.inner.is_none() {
            self.inner = Some(FrontClient::connect(&self.addr)?);
        }
        Ok(self.inner.as_mut().expect("just connected"))
    }
}
