//! Front-end tuning knobs: batching policy, admission control, threading shape.

use std::time::Duration;

/// Configuration for a [`crate::FrontServer`].
///
/// The two batching knobs trade latency for throughput: a query entering an empty
/// queue waits at most `max_delay` for company; a queue that already holds
/// `max_batch` same-index queries dispatches immediately. Coalescing never changes
/// an answer — a batch's results are bit-identical to serving each query alone —
/// so the knobs are pure performance tuning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrontConfig {
    /// Event-loop threads multiplexing client connections (`0` = one per available
    /// CPU, capped at 8 — front I/O parallelism saturates long before compute).
    pub loops: usize,
    /// Most queries coalesced into one engine batch. `1` disables coalescing.
    pub max_batch: usize,
    /// Longest a queued query waits for batch-mates before dispatching anyway.
    /// `Duration::ZERO` dispatches every poll — effectively batch-of-whatever-raced-in.
    pub max_delay: Duration,
    /// Admission bound: queries allowed to wait in the coalescing queue. A query
    /// arriving at a full queue is shed immediately with a typed `Overloaded`
    /// error — never silently dropped, never queued unbounded.
    pub queue_depth: usize,
    /// Engine executor workers per batch (`0` = one per available CPU).
    pub threads: usize,
}

impl Default for FrontConfig {
    fn default() -> Self {
        Self {
            loops: 2,
            max_batch: 32,
            max_delay: Duration::from_micros(500),
            queue_depth: 1024,
            threads: 0,
        }
    }
}

impl FrontConfig {
    /// Reads overrides from the environment on top of [`Default`]:
    /// `P2H_FRONT_LOOPS`, `P2H_FRONT_MAX_BATCH`, `P2H_FRONT_MAX_DELAY_US`,
    /// `P2H_FRONT_QUEUE_DEPTH`, `P2H_FRONT_THREADS`. Unparsable values keep the
    /// default — a serving process should come up, not die on a typo'd knob.
    pub fn from_env() -> Self {
        let get = |name: &str| std::env::var(name).ok()?.trim().parse::<u64>().ok();
        let defaults = Self::default();
        Self {
            loops: get("P2H_FRONT_LOOPS").map_or(defaults.loops, |v| v as usize),
            max_batch: get("P2H_FRONT_MAX_BATCH")
                .map_or(defaults.max_batch, |v| (v as usize).max(1)),
            max_delay: get("P2H_FRONT_MAX_DELAY_US")
                .map_or(defaults.max_delay, Duration::from_micros),
            queue_depth: get("P2H_FRONT_QUEUE_DEPTH")
                .map_or(defaults.queue_depth, |v| (v as usize).max(1)),
            threads: get("P2H_FRONT_THREADS").map_or(defaults.threads, |v| v as usize),
        }
    }

    /// The effective event-loop count (resolves `0` to the CPU count, capped at 8).
    pub fn effective_loops(&self) -> usize {
        if self.loops > 0 {
            return self.loops;
        }
        std::thread::available_parallelism().map_or(2, |n| n.get()).min(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane_and_loops_resolve() {
        let config = FrontConfig::default();
        assert!(config.max_batch > 1);
        assert!(config.queue_depth >= config.max_batch);
        assert!(config.effective_loops() >= 1);
        let auto = FrontConfig { loops: 0, ..config };
        assert!((1..=8).contains(&auto.effective_loops()));
    }
}
