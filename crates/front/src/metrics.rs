//! Front-end observability: the `p2h_front_*` families, published to the
//! process-wide [`p2h_obs`] registry (catalog in `docs/OBSERVABILITY.md`). Handles
//! are resolved once per server and shared by every thread.

use std::sync::Arc;

use p2h_engine::FrontPath;
use p2h_obs::{Counter, Gauge, Histogram};

/// Cached instrument handles for one front-end server.
#[derive(Debug)]
pub(crate) struct FrontMetrics {
    /// Client connections accepted.
    pub connections: Arc<Counter>,
    /// Front queries admitted to the coalescing queue.
    pub requests: Arc<Counter>,
    /// Engine batches dispatched by the coalescer.
    pub batches: Arc<Counter>,
    /// Queries per dispatched batch.
    pub batch_size: Arc<Histogram>,
    /// Queries currently waiting in the coalescing queue.
    pub queue_depth: Arc<Gauge>,
    /// Nanoseconds a query waited in the queue before its batch dispatched.
    pub queue_wait_ns: Arc<Histogram>,
    /// Requests shed at admission (`reason="overloaded"`).
    pub shed_overloaded: Arc<Counter>,
    /// Requests shed because their deadline expired in the queue (`reason="deadline"`).
    pub shed_deadline: Arc<Counter>,
    /// Completed zero-downtime engine reloads.
    pub reloads: Arc<Counter>,
    /// Batches dispatched per engine path (`path="live"|"shard_parallel"|"query_parallel"`).
    dispatch: [Arc<Counter>; 3],
}

impl FrontMetrics {
    pub fn new() -> Self {
        let reg = p2h_obs::global();
        let shed = |reason: &str| {
            reg.counter(
                "p2h_front_shed_total",
                "Requests shed by admission control, by reason — typed errors, never drops.",
                &[("reason", reason)],
            )
        };
        let dispatch = |path: FrontPath| {
            reg.counter(
                "p2h_front_dispatch_total",
                "Coalesced batches dispatched, by engine serving path.",
                &[("path", path.as_str())],
            )
        };
        Self {
            connections: reg.counter(
                "p2h_front_connections_total",
                "Client connections the front-end accepted.",
                &[],
            ),
            requests: reg.counter(
                "p2h_front_requests_total",
                "Front queries admitted to the coalescing queue.",
                &[],
            ),
            batches: reg.counter(
                "p2h_front_batches_total",
                "Engine batches the coalescer dispatched.",
                &[],
            ),
            batch_size: reg.histogram(
                "p2h_front_batch_size",
                "Queries coalesced into each dispatched batch.",
                &[],
            ),
            queue_depth: reg.gauge(
                "p2h_front_queue_depth",
                "Queries currently waiting in the coalescing queue.",
                &[],
            ),
            queue_wait_ns: reg.histogram(
                "p2h_front_queue_wait_ns",
                "Nanoseconds a query waited in the coalescing queue before dispatch.",
                &[],
            ),
            shed_overloaded: shed("overloaded"),
            shed_deadline: shed("deadline"),
            reloads: reg.counter(
                "p2h_front_reloads_total",
                "Zero-downtime engine reloads completed.",
                &[],
            ),
            dispatch: [
                dispatch(FrontPath::Live),
                dispatch(FrontPath::ShardParallel),
                dispatch(FrontPath::QueryParallel),
            ],
        }
    }

    /// The dispatch counter for `path`.
    pub fn dispatch_for(&self, path: FrontPath) -> &Arc<Counter> {
        match path {
            FrontPath::Live => &self.dispatch[0],
            FrontPath::ShardParallel => &self.dispatch[1],
            FrontPath::QueryParallel => &self.dispatch[2],
        }
    }
}
