//! `p2h-front` — the serving front-end for point-to-hyperplane search.
//!
//! A std-only, thread-per-core TCP front-end over the workspace's length-prefixed
//! CRC frame protocol ([`p2h_net::wire`]), built on a minimal `poll(2)` shim
//! instead of an async runtime (none exists offline). It adds the three serving
//! behaviors an engine alone does not have:
//!
//! * **Dynamic batching** — concurrent single queries coalesce into engine
//!   batches under a `max_batch`/`max_delay` policy and demultiplex back per
//!   connection. Answers are **bit-identical** to serving each query alone; the
//!   knobs trade latency for throughput, never correctness.
//! * **Admission control** — a bounded coalescing queue with per-request
//!   deadlines. Overload sheds with a typed [`p2h_net::ErrorCode::Overloaded`]
//!   error and lapsed deadlines with `DeadlineExceeded`; nothing is silently
//!   dropped and nothing queues unbounded.
//! * **Zero-downtime reload** — a `Reload` request cold-starts a fresh
//!   [`p2h_engine::Engine`] from the snapshot store and swaps it in under live
//!   traffic; in-flight batches finish on the engine they captured.
//!
//! Batches dispatch through `Engine::serve_front`, which routes each one to the
//! live / shard-parallel / query-parallel path using the registry and the
//! observed `p2h_shard_latency_ns` histograms. The `p2h_front_*` metric families
//! (catalog in `docs/OBSERVABILITY.md`) expose queue depth, batch sizes, shed
//! counts, and dispatch paths; `docs/SERVING.md` documents the protocol and
//! operational lifecycle.
//!
//! # Quickstart
//!
//! ```no_run
//! use p2h_front::{FrontClient, FrontConfig, FrontServer};
//!
//! // Serve a snapshot store (written by `p2h_store::StoreWriter`):
//! let server = FrontServer::from_store("/var/lib/p2h/snapshot", FrontConfig::default())?;
//! let handle = server.serve("127.0.0.1:7479")?;
//!
//! // Query it — coalescing happens server-side, transparently:
//! let mut client = FrontClient::connect(&handle.addr().to_string())?;
//! # let (query, params) = unimplemented!();
//! let outcome = client.query("main", &query, &params, 50)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_op_in_unsafe_fn)]

mod client;
mod config;
mod metrics;
mod poll;
mod queue;
mod server;

pub use client::{FrontClient, FrontOutcome, RetryingClient};
pub use config::FrontConfig;
pub use server::{FrontHandle, FrontServer};
