//! The front-end server: nonblocking accept loop, `poll(2)` event loops
//! multiplexing client connections, a batcher thread draining the coalescing
//! queue into [`Engine::serve_front`], and zero-downtime engine reloads.
//!
//! Threading model (all plain `std` threads, no async runtime):
//!
//! * **acceptor** — nonblocking listener; accepted connections are handed
//!   round-robin to the event loops through per-loop mailboxes + wake pipes.
//! * **event loops (`FrontConfig::loops`)** — each owns its connections: reads
//!   frames incrementally ([`p2h_net::wire::frame_from_buf`]), answers
//!   handshakes/metrics inline, pushes queries through admission into the
//!   coalescing queue, and flushes buffered replies under `POLLOUT`. A stalled or
//!   hostile client can therefore never block another connection.
//! * **batcher** — forms per-index batches under the `max_batch`/`max_delay`
//!   policy and serves them through [`Engine::serve_front`]; replies are routed
//!   back to each connection's event loop as completions.
//!
//! Answers are **bit-identical** to serving each query alone: the batch executor
//! guarantees batch ≡ sequential, and per-query parameters travel as one override
//! per position. Failures are always typed ([`p2h_net::ErrorCode`]) — admission
//! sheds with `Overloaded`, queue-lapsed deadlines with `DeadlineExceeded`,
//! never a silent drop or a hang.
//!
//! Fault sites `front.accept`, `front.read`, `front.write`, and `front.queue`
//! (`P2H_FAULTS`) inject failures at the accept, socket-read, socket-write, and
//! admission boundaries for the chaos suite.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use p2h_core::HyperplaneQuery;
use p2h_engine::{BatchRequest, Engine};
use p2h_net::wire::{frame_bytes, frame_from_buf};
use p2h_net::{ensure_reuseaddr, ErrorCode, Message, NetError, PROTOCOL_VERSION};
use p2h_obs::{fault, FaultKind};

use crate::config::FrontConfig;
use crate::metrics::FrontMetrics;
use crate::poll::{PollSet, WakePipe, Waker, POLL_ERR, POLL_HUP, POLL_IN, POLL_OUT};
use crate::queue::{CoalesceQueue, Pending};

/// How the poll loops cap a sleep so shutdown flags are observed promptly.
const POLL_TICK_MS: i32 = 25;

/// A reply addressed to one connection of one event loop.
type Completion = (u64, Message);

/// Per-event-loop shared state: the mailboxes other threads fill, plus the waker
/// that interrupts the loop's poll sleep after filling one.
struct LoopShared {
    /// Freshly accepted connections from the acceptor.
    incoming: Mutex<Vec<TcpStream>>,
    /// Replies from the batcher / reload threads.
    inbox: Mutex<Vec<Completion>>,
    waker: Waker,
}

impl LoopShared {
    fn deliver(&self, conn_id: u64, message: Message) {
        self.inbox.lock().expect("loop inbox poisoned").push((conn_id, message));
        self.waker.wake();
    }
}

/// Where reloads cold-start fresh engines from.
struct ReloadSource {
    dir: PathBuf,
    threads: usize,
}

/// State shared by every thread of one front-end server.
struct Shared {
    /// The serving engine. Reload swaps the `Arc` under the write lock; in-flight
    /// batches keep serving their clone — there is no torn state to observe.
    engine: RwLock<Arc<Engine>>,
    reload: Option<ReloadSource>,
    queue: CoalesceQueue,
    metrics: FrontMetrics,
    loops: Vec<LoopShared>,
    shutdown: AtomicBool,
}

impl Shared {
    fn current_engine(&self) -> Arc<Engine> {
        Arc::clone(&self.engine.read().expect("engine lock poisoned"))
    }
}

/// A running front-end. Dropping the handle shuts every thread down.
pub struct FrontHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for FrontHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrontHandle").field("addr", &self.addr).finish()
    }
}

impl FrontHandle {
    /// The address the server actually bound (resolves `:0` ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine currently serving (post-reload handles reflect the swap).
    pub fn engine(&self) -> Arc<Engine> {
        self.shared.current_engine()
    }

    /// Stops accepting, drains the queue, and joins every thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.queue.shutdown();
        for lane in &self.shared.loops {
            lane.waker.wake();
        }
        for thread in self.threads.drain(..) {
            thread.join().ok();
        }
    }
}

impl Drop for FrontHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// The front-end server: an [`Engine`] plus the serving configuration.
pub struct FrontServer {
    engine: Arc<Engine>,
    reload: Option<ReloadSource>,
    config: FrontConfig,
}

impl std::fmt::Debug for FrontServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrontServer").field("config", &self.config).finish()
    }
}

impl FrontServer {
    /// Fronts an engine built elsewhere (tests, embedded serving). Reload requests
    /// get a typed error — there is no store to cold-start from.
    pub fn new(engine: Arc<Engine>, config: FrontConfig) -> Self {
        Self { engine, reload: None, config }
    }

    /// Cold-starts an engine from a `p2h-store` snapshot directory (load mode from
    /// `P2H_STORE_MMAP`, like [`Engine::from_store`]) and remembers the directory so
    /// `Reload` requests can cold-start a fresh engine and swap it in under
    /// traffic.
    pub fn from_store(
        dir: impl Into<PathBuf>,
        config: FrontConfig,
    ) -> Result<Self, p2h_store::StoreError> {
        let dir = dir.into();
        let engine = Arc::new(Engine::from_store(&dir, config.threads)?);
        Ok(Self { engine, reload: Some(ReloadSource { dir, threads: config.threads }), config })
    }

    /// Binds `addr` (e.g. `127.0.0.1:0`) and starts serving in background threads.
    ///
    /// # Errors
    ///
    /// I/O errors binding the listener or spawning threads.
    pub fn serve(self, addr: &str) -> std::io::Result<FrontHandle> {
        let listener = TcpListener::bind(addr)?;
        // Restart harnesses re-bind this exact port right after a kill; make the
        // TIME_WAIT-proofing explicit instead of relying on std's default.
        ensure_reuseaddr(&listener)?;
        let bound = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let loop_count = self.config.effective_loops();
        let mut pipes = Vec::with_capacity(loop_count);
        let mut lanes = Vec::with_capacity(loop_count);
        for _ in 0..loop_count {
            let pipe = WakePipe::new()?;
            lanes.push(LoopShared {
                incoming: Mutex::new(Vec::new()),
                inbox: Mutex::new(Vec::new()),
                waker: pipe.waker()?,
            });
            pipes.push(pipe);
        }
        let shared = Arc::new(Shared {
            engine: RwLock::new(self.engine),
            reload: self.reload,
            queue: CoalesceQueue::new(
                self.config.queue_depth,
                self.config.max_batch,
                self.config.max_delay,
            ),
            metrics: FrontMetrics::new(),
            loops: lanes,
            shutdown: AtomicBool::new(false),
        });

        let mut threads = Vec::with_capacity(loop_count + 2);
        for (loop_id, pipe) in pipes.into_iter().enumerate() {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("p2h-front-loop-{loop_id}"))
                    .spawn(move || event_loop(loop_id, &pipe, &shared))?,
            );
        }
        {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name("p2h-front-batcher".into())
                    .spawn(move || batcher_loop(&shared))?,
            );
        }
        {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("p2h-front-accept-{bound}"))
                    .spawn(move || accept_loop(listener, &shared))?,
            );
        }
        Ok(FrontHandle { addr: bound, shared, threads })
    }
}

// ---------------------------------------------------------------------------
// Acceptor
// ---------------------------------------------------------------------------

fn accept_loop(listener: TcpListener, shared: &Shared) {
    let mut next_loop = 0usize;
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                match fault::check("front.accept") {
                    Some(FaultKind::Refuse) | Some(FaultKind::Disconnect) => {
                        // Drop the accepted socket: the client sees a hangup and
                        // must retry; no partial state exists to clean up.
                        drop(stream);
                        continue;
                    }
                    Some(FaultKind::Slow(ms)) => std::thread::sleep(Duration::from_millis(ms)),
                    _ => {}
                }
                shared.metrics.connections.inc();
                let lane = &shared.loops[next_loop];
                next_loop = (next_loop + 1) % shared.loops.len();
                lane.incoming.lock().expect("incoming poisoned").push(stream);
                lane.waker.wake();
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

// ---------------------------------------------------------------------------
// Event loops
// ---------------------------------------------------------------------------

/// One multiplexed client connection.
struct Conn {
    stream: TcpStream,
    /// Bytes read but not yet parsed into complete frames.
    read_buf: Vec<u8>,
    /// Encoded reply frames not yet accepted by the socket.
    write_buf: Vec<u8>,
    /// Close after the write buffer drains (post-error courtesy reply).
    close_after_flush: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Self { stream, read_buf: Vec::new(), write_buf: Vec::new(), close_after_flush: false }
    }

    fn queue_reply(&mut self, message: &Message) {
        self.write_buf.extend_from_slice(&frame_bytes(message));
    }
}

fn event_loop(loop_id: usize, pipe: &WakePipe, shared: &Arc<Shared>) {
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_conn_id = 0u64;
    let mut poll = PollSet::new();
    let mut dead = Vec::new();

    while !shared.shutdown.load(Ordering::SeqCst) {
        let lane = &shared.loops[loop_id];
        // Adopt freshly accepted connections.
        for stream in lane.incoming.lock().expect("incoming poisoned").drain(..) {
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            stream.set_nodelay(true).ok();
            conns.insert(next_conn_id, Conn::new(stream));
            next_conn_id += 1;
        }
        // Deliver batcher/reload completions into write buffers.
        for (conn_id, message) in lane.inbox.lock().expect("inbox poisoned").drain(..) {
            if let Some(conn) = conns.get_mut(&conn_id) {
                conn.queue_reply(&message);
            } // else: the client hung up before its answer; nothing to deliver.
        }
        // Opportunistic flush keeps the common case (small reply, empty socket
        // buffer) at one syscall without waiting for a POLLOUT round.
        for (&conn_id, conn) in conns.iter_mut() {
            if !conn.write_buf.is_empty() && !flush_conn(conn) {
                dead.push(conn_id);
            }
        }
        reap(&mut conns, &mut dead);

        // Poll: the wake pipe plus every connection.
        poll.clear();
        let wake_slot = poll.push(pipe.poll_fd(), POLL_IN);
        let mut slots: Vec<(u64, usize)> = Vec::with_capacity(conns.len());
        for (&conn_id, conn) in conns.iter() {
            let mut interest = POLL_IN;
            if !conn.write_buf.is_empty() {
                interest |= POLL_OUT;
            }
            #[cfg(unix)]
            let fd = {
                use std::os::fd::AsRawFd;
                conn.stream.as_raw_fd()
            };
            #[cfg(not(unix))]
            let fd = 0;
            slots.push((conn_id, poll.push(fd, interest)));
        }
        if poll.wait(POLL_TICK_MS).is_err() {
            continue;
        }
        if poll.revents(wake_slot) & POLL_IN != 0 {
            pipe.drain();
        }
        for (conn_id, slot) in slots {
            let revents = poll.revents(slot);
            if revents == 0 {
                continue;
            }
            let Some(conn) = conns.get_mut(&conn_id) else { continue };
            let mut alive = true;
            if revents & (POLL_ERR | POLL_HUP) != 0 && revents & POLL_IN == 0 {
                alive = false;
            }
            if alive && revents & POLL_IN != 0 {
                alive = read_conn(loop_id, conn_id, conn, shared);
            }
            if alive && revents & POLL_OUT != 0 {
                alive = flush_conn(conn);
            }
            if alive && conn.close_after_flush && conn.write_buf.is_empty() {
                alive = false;
            }
            if !alive {
                dead.push(conn_id);
            }
        }
        reap(&mut conns, &mut dead);
    }
}

fn reap(conns: &mut HashMap<u64, Conn>, dead: &mut Vec<u64>) {
    for conn_id in dead.drain(..) {
        conns.remove(&conn_id);
    }
}

/// Reads everything currently available and processes complete frames. Returns
/// `false` when the connection must close (EOF, I/O error, poisoned framing).
fn read_conn(loop_id: usize, conn_id: u64, conn: &mut Conn, shared: &Arc<Shared>) -> bool {
    let mut chunk = [0u8; 16 * 1024];
    loop {
        match fault::check("front.read") {
            Some(FaultKind::Disconnect) | Some(FaultKind::Refuse) => return false,
            Some(FaultKind::Slow(ms)) => std::thread::sleep(Duration::from_millis(ms)),
            Some(FaultKind::Eintr) => continue, // pretend the read was interrupted
            _ => {}
        }
        match (&conn.stream).read(&mut chunk) {
            Ok(0) => {
                // Clean EOF: process what is already buffered, flush pending
                // replies, then close — never spin on a half-closed socket.
                let ok = process_frames(loop_id, conn_id, conn, shared);
                conn.close_after_flush = true;
                return ok;
            }
            Ok(mut n) => {
                match fault::check("front.read") {
                    Some(FaultKind::Truncate) => {
                        n /= 2; // drop the tail: the framing layer sees a short frame
                        conn.read_buf.extend_from_slice(&chunk[..n]);
                        let _ = process_frames(loop_id, conn_id, conn, shared);
                        return false;
                    }
                    Some(FaultKind::Corrupt) if n > 0 => {
                        chunk[n - 1] ^= 0x40; // CRC catches it downstream
                    }
                    _ => {}
                }
                conn.read_buf.extend_from_slice(&chunk[..n]);
                if !process_frames(loop_id, conn_id, conn, shared) {
                    return false;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return true,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }
}

/// Parses and dispatches every complete frame in the read buffer. Returns `false`
/// when framing is poisoned and the connection must close.
fn process_frames(loop_id: usize, conn_id: u64, conn: &mut Conn, shared: &Arc<Shared>) -> bool {
    loop {
        match frame_from_buf(&conn.read_buf) {
            Ok(None) => return true,
            Ok(Some((message, consumed))) => {
                conn.read_buf.drain(..consumed);
                handle_message(loop_id, conn_id, conn, shared, message);
                if conn.close_after_flush {
                    return !conn.write_buf.is_empty();
                }
            }
            Err(NetError::Malformed { context }) => {
                // The frame arrived intact (CRC passed) but does not decode: say
                // why, flush, then close — mirrors the shard server's contract.
                conn.queue_reply(&Message::ErrorReply {
                    code: ErrorCode::BadRequest,
                    message: context,
                });
                conn.close_after_flush = true;
                return true;
            }
            Err(_) => return false, // bad magic / CRC / oversized: nothing sane to say
        }
    }
}

fn handle_message(
    loop_id: usize,
    conn_id: u64,
    conn: &mut Conn,
    shared: &Arc<Shared>,
    message: Message,
) {
    match message {
        Message::Hello { version: _ } => {
            // Version negotiation is the client's call; disclose ours plus the
            // registry size (the shard_count field doubles as the entry count —
            // a front-end has no single dim/len to report).
            let engine = shared.current_engine();
            conn.queue_reply(&Message::HelloOk {
                version: PROTOCOL_VERSION,
                shard_count: engine.registry().len() as u32,
                dim: 0,
                total_len: 0,
            });
        }
        Message::Ping { nonce } => conn.queue_reply(&Message::Pong { nonce }),
        Message::FrontQuery { id, index, deadline_ms, query } => {
            shared.metrics.requests.inc();
            let refused = matches!(
                fault::check("front.queue"),
                Some(FaultKind::Refuse) | Some(FaultKind::Disconnect)
            );
            let deadline =
                (deadline_ms > 0).then(|| Instant::now() + Duration::from_millis(deadline_ms));
            let pending = Pending {
                loop_id,
                conn_id,
                request_id: id,
                index,
                deadline,
                query,
                enqueued: Instant::now(),
            };
            let admitted = if refused { Err(pending) } else { shared.queue.push(pending) };
            match admitted {
                Ok(()) => {
                    shared.metrics.queue_depth.set(shared.queue.len() as u64);
                }
                Err(shed) => {
                    // Typed shed, never a silent drop: the client learns
                    // immediately and may retry after backoff.
                    shared.metrics.shed_overloaded.inc();
                    conn.queue_reply(&Message::FrontError {
                        id: shed.request_id,
                        code: ErrorCode::Overloaded,
                        message: "admission queue full".into(),
                    });
                }
            }
        }
        Message::MetricsRequest { id } => {
            let text = shared.current_engine().render_metrics();
            conn.queue_reply(&Message::MetricsReply { id, text });
        }
        Message::Reload { id } => match &shared.reload {
            None => conn.queue_reply(&Message::FrontError {
                id,
                code: ErrorCode::BadRequest,
                message: "this front-end was not started from a store; nothing to reload".into(),
            }),
            Some(_) => {
                // Cold starts take real time: run them off-loop and deliver the
                // outcome as a completion so the event loop never stalls.
                spawn_reload(loop_id, conn_id, id, shared);
            }
        },
        other => conn.queue_reply(&Message::ErrorReply {
            code: ErrorCode::BadRequest,
            message: format!("unexpected message: {other:?}"),
        }),
    }
}

/// Flushes as much of the write buffer as the socket accepts. Returns `false` when
/// the connection must close.
fn flush_conn(conn: &mut Conn) -> bool {
    match fault::check("front.write") {
        Some(FaultKind::Disconnect) | Some(FaultKind::Refuse) => return false,
        Some(FaultKind::Slow(ms)) => std::thread::sleep(Duration::from_millis(ms)),
        Some(FaultKind::Corrupt) => {
            // Flip one byte of the pending frame: the client's CRC check rejects
            // it and its retry path owns recovery.
            if let Some(byte) = conn.write_buf.last_mut() {
                *byte ^= 0x20;
            }
        }
        Some(FaultKind::Truncate) => {
            let keep = conn.write_buf.len() / 2;
            conn.write_buf.truncate(keep);
            conn.close_after_flush = true;
        }
        _ => {}
    }
    let mut written = 0usize;
    let result = loop {
        if written == conn.write_buf.len() {
            break true;
        }
        match (&conn.stream).write(&conn.write_buf[written..]) {
            Ok(0) => break false,
            Ok(n) => written += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break true,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => break false,
        }
    };
    conn.write_buf.drain(..written);
    result
}

// ---------------------------------------------------------------------------
// Batcher
// ---------------------------------------------------------------------------

fn batcher_loop(shared: &Shared) {
    while let Some(take) = shared.queue.next_batch() {
        shared.metrics.queue_depth.set(shared.queue.len() as u64);
        for lapsed in take.expired {
            shared.metrics.shed_deadline.inc();
            shared.loops[lapsed.loop_id].deliver(
                lapsed.conn_id,
                Message::FrontError {
                    id: lapsed.request_id,
                    code: ErrorCode::DeadlineExceeded,
                    message: "deadline expired in the coalescing queue".into(),
                },
            );
        }
        if take.items.is_empty() {
            continue;
        }
        serve_batch(shared, &take.index, take.items);
    }
}

/// Serves one coalesced batch and routes each reply to its connection.
fn serve_batch(shared: &Shared, index: &str, items: Vec<Pending>) {
    // Decode every wire query up front; a malformed one (non-finite norm, …) gets
    // its own typed error and must not poison its batch-mates.
    let mut queries: Vec<HyperplaneQuery> = Vec::with_capacity(items.len());
    let mut accepted: Vec<Pending> = Vec::with_capacity(items.len());
    for pending in items {
        match pending.query.to_query() {
            Ok(query) => {
                queries.push(query);
                accepted.push(pending);
            }
            Err(e) => shared.loops[pending.loop_id].deliver(
                pending.conn_id,
                Message::FrontError {
                    id: pending.request_id,
                    code: ErrorCode::BadRequest,
                    message: e.to_string(),
                },
            ),
        }
    }
    if accepted.is_empty() {
        return;
    }
    let engine = shared.current_engine();
    let mut request = BatchRequest::new(queries, accepted[0].query.params.clone());
    for (position, pending) in accepted.iter().enumerate() {
        request.overrides.push((position, pending.query.params.clone()));
    }
    match engine.serve_front(index, &request) {
        Ok((response, path)) => {
            shared.metrics.batches.inc();
            shared.metrics.batch_size.record(accepted.len() as u64);
            shared.metrics.dispatch_for(path).inc();
            let now = Instant::now();
            for (pending, result) in accepted.into_iter().zip(response.results) {
                shared
                    .metrics
                    .queue_wait_ns
                    .record(now.saturating_duration_since(pending.enqueued).as_nanos() as u64);
                shared.loops[pending.loop_id].deliver(
                    pending.conn_id,
                    Message::FrontReply { id: pending.request_id, result },
                );
            }
        }
        Err(error) if accepted.len() > 1 => {
            // Whole-batch validation failure (one query's dimension is off, an
            // override is out of range): isolate it by serving each query alone so
            // the error lands only on the request that caused it.
            for pending in accepted {
                serve_batch(shared, index, vec![pending]);
            }
            drop(error);
        }
        Err(error) => {
            let pending = accepted.into_iter().next().expect("non-empty");
            shared.loops[pending.loop_id].deliver(
                pending.conn_id,
                Message::FrontError {
                    id: pending.request_id,
                    code: ErrorCode::BadRequest,
                    message: error.to_string(),
                },
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Reload
// ---------------------------------------------------------------------------

/// Cold-starts a fresh engine from the remembered store directory on a one-off
/// thread and swaps it in; the requesting connection gets `ReloadOk` (or a typed
/// error) as a completion. Queries racing the swap serve on whichever engine
/// their batch captured — both answer bit-identically from the same store.
fn spawn_reload(loop_id: usize, conn_id: u64, request_id: u64, shared: &Arc<Shared>) {
    let shared = Arc::clone(shared);
    std::thread::Builder::new()
        .name("p2h-front-reload".into())
        .spawn(move || {
            let source = shared.reload.as_ref().expect("caller checked");
            let outcome = Engine::from_store(&source.dir, source.threads);
            let message = match outcome {
                Ok(fresh) => {
                    let entries = fresh.registry().len() as u32;
                    *shared.engine.write().expect("engine lock poisoned") = Arc::new(fresh);
                    shared.metrics.reloads.inc();
                    Message::ReloadOk { id: request_id, entries }
                }
                Err(e) => Message::FrontError {
                    id: request_id,
                    code: ErrorCode::Internal,
                    message: format!("reload failed; still serving the previous engine: {e}"),
                },
            };
            shared.loops[loop_id].deliver(conn_id, message);
        })
        .ok();
}
