//! `front-server` — the coalescing serving front-end over a snapshot store.
//!
//! ```text
//! front-server --store DIR [--addr 127.0.0.1:0] [--max-batch 32]
//!              [--max-delay-us 500] [--queue-depth 1024] [--loops 2]
//! ```
//!
//! Cold-starts every manifest entry from the store (`P2H_STORE_MMAP` picks the
//! load mode), then serves `FrontQuery`/`MetricsRequest`/`Reload` frames until
//! killed. Prints the same one-line parseable banner as `shard-server` —
//! `READY addr=<addr> pid=<pid>` — so a parent process learns the ephemeral port
//! and the pid in one read. The listener sets `SO_REUSEADDR`, so a restarted
//! front can re-bind the killed one's exact port immediately.
//!
//! Batching/admission knobs default from `P2H_FRONT_*` environment variables
//! ([`FrontConfig::from_env`]); flags override the environment.

use std::io::Write;
use std::process::ExitCode;
use std::time::Duration;

use p2h_front::{FrontConfig, FrontServer};

struct Args {
    store: String,
    addr: String,
    config: FrontConfig,
}

fn parse_args() -> Result<Args, String> {
    let mut store = None;
    let mut addr = "127.0.0.1:0".to_string();
    let mut config = FrontConfig::from_env();
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| iter.next().ok_or_else(|| format!("{name} requires a value"));
        let parse = |name: &str, raw: String| {
            raw.parse::<u64>().map_err(|e| format!("{name} '{raw}': {e}"))
        };
        match flag.as_str() {
            "--store" => store = Some(value("--store")?),
            "--addr" => addr = value("--addr")?,
            "--max-batch" => {
                config.max_batch = (parse("--max-batch", value("--max-batch")?)? as usize).max(1)
            }
            "--max-delay-us" => {
                config.max_delay =
                    Duration::from_micros(parse("--max-delay-us", value("--max-delay-us")?)?)
            }
            "--queue-depth" => {
                config.queue_depth =
                    (parse("--queue-depth", value("--queue-depth")?)? as usize).max(1)
            }
            "--loops" => config.loops = parse("--loops", value("--loops")?)? as usize,
            "--threads" => config.threads = parse("--threads", value("--threads")?)? as usize,
            "--help" | "-h" => {
                return Err("usage: front-server --store DIR [--addr 127.0.0.1:0] \
                            [--max-batch N] [--max-delay-us N] [--queue-depth N] \
                            [--loops N] [--threads N]"
                    .into())
            }
            other => return Err(format!("unknown flag '{other}' (try --help)")),
        }
    }
    Ok(Args { store: store.ok_or("--store is required")?, addr, config })
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let server = FrontServer::from_store(&args.store, args.config)
        .map_err(|e| format!("cold start: {e}"))?;
    let handle = server.serve(&args.addr).map_err(|e| format!("bind {}: {e}", args.addr))?;
    // The parent parses this exact one-line banner: the address it will dial and
    // the pid it will later signal.
    println!("READY addr={} pid={}", handle.addr(), std::process::id());
    std::io::stdout().flush().ok();
    // Serve until killed; reloads arrive over the wire, not via signals.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("front-server: {message}");
            ExitCode::FAILURE
        }
    }
}
