//! `front_bench` — throughput bench and correctness checker for the coalescing
//! front-end.
//!
//! ```text
//! front_bench [--check] [--points N] [--queries M] [--shards S] [--seed X]
//! ```
//!
//! Default mode: build a deterministic synthetic index, serve it in-process, and
//! sweep client concurrency × coalescing policy (`max_batch=32/500µs` vs
//! `max_batch=1`), reporting QPS and p99 latency per cell. Every reply is compared
//! bit-for-bit (ids + f32 distance bits) against a local linear scan — the bench
//! doubles as a correctness harness.
//!
//! `--check` mode (CI's front job): a smaller sweep plus two hard assertions —
//! coalescing actually formed multi-query batches (batch counters from
//! `/metrics`), and a store-backed server answers bit-identically before and
//! after a mid-traffic `Reload`. Runs under both `P2H_STORE_MMAP` settings in CI.
//!
//! Everything is seeded — no ambient randomness — so a failure reproduces.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use p2h_core::{
    HyperplaneQuery, LinearScan, P2hIndex, PointSet, QueryScratch, Scalar, SearchParams,
    SearchResult,
};
use p2h_engine::Engine;
use p2h_front::{FrontClient, FrontConfig, FrontServer};
use p2h_shard::{Partitioner, ShardIndexKind, ShardedIndexBuilder};
use p2h_store::Store;

fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unit_interval(x: &mut u64) -> Scalar {
    ((splitmix64(x) >> 11) as f64 / (1u64 << 53) as f64) as Scalar
}

struct Args {
    check: bool,
    points: usize,
    queries: usize,
    shards: usize,
    seed: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args { check: false, points: 600, queries: 24, shards: 3, seed: 0xF407 };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| -> Result<String, String> {
            iter.next().ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--check" => args.check = true,
            "--points" => args.points = value("--points")?.parse().map_err(|e| format!("{e}"))?,
            "--queries" => {
                args.queries = value("--queries")?.parse().map_err(|e| format!("{e}"))?
            }
            "--shards" => args.shards = value("--shards")?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => args.seed = value("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--help" | "-h" => {
                return Err("usage: front_bench [--check] [--points N] [--queries M] \
                            [--shards S] [--seed X]"
                    .into())
            }
            other => return Err(format!("unknown flag '{other}' (try --help)")),
        }
    }
    Ok(args)
}

const DIM_RAW: usize = 8;

fn synthetic_points(n: usize, seed: u64) -> PointSet {
    let mut state = seed;
    let rows: Vec<Vec<Scalar>> = (0..n)
        .map(|_| (0..DIM_RAW).map(|_| unit_interval(&mut state) * 4.0 - 2.0).collect())
        .collect();
    PointSet::augment(&rows).expect("non-empty synthetic rows")
}

fn synthetic_queries(m: usize, seed: u64) -> Vec<(HyperplaneQuery, SearchParams)> {
    let mut state = seed ^ 0x5151_5151;
    (0..m)
        .map(|i| {
            let normal: Vec<Scalar> =
                (0..DIM_RAW).map(|_| unit_interval(&mut state) * 2.0 - 1.0).collect();
            let bias = unit_interval(&mut state) - 0.5;
            let query = HyperplaneQuery::from_normal_and_bias(&normal, bias)
                .expect("non-degenerate synthetic normal");
            // Mix exact and budgeted searches so per-position parameter overrides
            // ride through the coalescer too.
            let params = match i % 3 {
                0 => SearchParams::exact(10),
                1 => SearchParams::approximate(5, 64),
                _ => SearchParams::exact(3),
            };
            (query, params)
        })
        .collect()
}

fn oracle_answers(
    points: &PointSet,
    queries: &[(HyperplaneQuery, SearchParams)],
) -> Vec<SearchResult> {
    let scan = LinearScan::new(points.clone());
    let mut scratch = QueryScratch::new();
    queries.iter().map(|(q, p)| scan.search_with_scratch(q, p, &mut scratch)).collect()
}

fn assert_result_bits(
    got: &SearchResult,
    want: &SearchResult,
    context: &str,
) -> Result<(), String> {
    if got.neighbors.len() != want.neighbors.len() {
        return Err(format!(
            "{context}: {} neighbors vs oracle {}",
            got.neighbors.len(),
            want.neighbors.len()
        ));
    }
    for (rank, (g, w)) in got.neighbors.iter().zip(&want.neighbors).enumerate() {
        if g.index != w.index || g.distance.to_bits() != w.distance.to_bits() {
            return Err(format!(
                "{context}: rank {rank}: front ({}, {:#010x}) != oracle ({}, {:#010x})",
                g.index,
                g.distance.to_bits(),
                w.index,
                w.distance.to_bits()
            ));
        }
    }
    Ok(())
}

fn build_engine(points: &PointSet, shards: usize, seed: u64) -> Engine {
    let index = ShardedIndexBuilder::new(Partitioner::Hash { shards }, ShardIndexKind::LinearScan)
        .with_seed(seed)
        .build(points)
        .expect("sharded build");
    let engine = Engine::new(0);
    engine.registry().register_sharded("bench", index);
    engine
}

/// One sweep cell: `clients` threads, each pipelining the whole query set per
/// round over its own connection (`FrontClient::query_many` — the open-loop shape
/// coalescing exists for), every answer checked bit-for-bit. Returns
/// `(qps, p99_round_us)` where a round is one pipelined wave of queries.
fn drive(
    addr: &str,
    queries: &[(HyperplaneQuery, SearchParams)],
    oracle: &[SearchResult],
    clients: usize,
    rounds: usize,
) -> Result<(f64, f64), String> {
    let wall = Instant::now();
    let latencies = std::thread::scope(|scope| -> Result<Vec<u64>, String> {
        let mut handles = Vec::with_capacity(clients);
        for worker in 0..clients {
            handles.push(scope.spawn(move || -> Result<Vec<u64>, String> {
                let mut client = FrontClient::connect(addr).map_err(|e| format!("connect: {e}"))?;
                let mut lat = Vec::with_capacity(rounds);
                for round in 0..rounds {
                    let sent = Instant::now();
                    let outcomes = client
                        .query_many("bench", queries, 0)
                        .map_err(|e| format!("worker {worker} round {round}: {e}"))?;
                    lat.push(sent.elapsed().as_nanos() as u64);
                    for (position, outcome) in outcomes.into_iter().enumerate() {
                        let result = outcome.map_err(|(code, message)| {
                            format!("worker {worker} round {round} q{position}: {code}: {message}")
                        })?;
                        assert_result_bits(
                            &result,
                            &oracle[position],
                            &format!("worker {worker} round {round} q{position}"),
                        )?;
                    }
                }
                Ok(lat)
            }));
        }
        let mut all = Vec::new();
        for handle in handles {
            all.extend(handle.join().map_err(|_| "worker panicked".to_string())??);
        }
        Ok(all)
    })?;
    let elapsed = wall.elapsed().as_secs_f64().max(1e-9);
    let served = clients * rounds * queries.len();
    let mut sorted = latencies;
    sorted.sort_unstable();
    let p99 = sorted[(sorted.len() * 99 / 100).min(sorted.len() - 1)] as f64 / 1_000.0;
    Ok((served as f64 / elapsed, p99))
}

/// Parses one un-labeled counter value out of Prometheus text exposition.
fn metric_value(text: &str, family: &str) -> u64 {
    text.lines()
        .filter(|line| !line.starts_with('#'))
        .filter_map(|line| {
            let (name, value) = line.rsplit_once(' ')?;
            (name == family || name.starts_with(&format!("{family}{{")))
                .then(|| value.trim().parse::<u64>().ok())?
        })
        .sum()
}

fn policy(coalesce: bool) -> FrontConfig {
    FrontConfig {
        loops: 2,
        max_batch: if coalesce { 32 } else { 1 },
        max_delay: if coalesce { Duration::from_micros(500) } else { Duration::ZERO },
        queue_depth: 4096,
        threads: 0,
    }
}

fn run_bench(args: &Args) -> Result<(), String> {
    let points = synthetic_points(args.points, args.seed);
    let queries = synthetic_queries(args.queries, args.seed);
    let oracle = oracle_answers(&points, &queries);
    let engine = Arc::new(build_engine(&points, args.shards, args.seed));

    println!(
        "front_bench: {} points, {} distinct queries, {} shards",
        args.points, args.queries, args.shards
    );
    println!("{:<12} {:>8} {:>12} {:>14}", "policy", "clients", "qps", "p99_round_us");
    for coalesce in [false, true] {
        let handle = FrontServer::new(Arc::clone(&engine), policy(coalesce))
            .serve("127.0.0.1:0")
            .map_err(|e| format!("serve: {e}"))?;
        let addr = handle.addr().to_string();
        for clients in [1usize, 4, 16] {
            let rounds = (200 / clients).max(8);
            let (qps, p99) = drive(&addr, &queries, &oracle, clients, rounds)?;
            println!(
                "{:<12} {:>8} {:>12.0} {:>14.1}",
                if coalesce { "coalesce" } else { "batch=1" },
                clients,
                qps,
                p99
            );
        }
        handle.shutdown();
    }
    println!("front_bench: all answers bit-identical to local scan");
    Ok(())
}

fn run_check(args: &Args) -> Result<(), String> {
    let points = synthetic_points(args.points, args.seed);
    let queries = synthetic_queries(args.queries, args.seed);
    let oracle = oracle_answers(&points, &queries);

    // Phase 1: coalescing correctness + effectiveness against an in-process engine.
    let engine = Arc::new(build_engine(&points, args.shards, args.seed));
    let handle = FrontServer::new(Arc::clone(&engine), policy(true))
        .serve("127.0.0.1:0")
        .map_err(|e| format!("serve: {e}"))?;
    let addr = handle.addr().to_string();
    let mut probe = FrontClient::connect(&addr).map_err(|e| format!("connect: {e}"))?;
    let before = probe.metrics().map_err(|e| format!("metrics: {e}"))?;
    drive(&addr, &queries, &oracle, 8, 6)?;
    let after = probe.metrics().map_err(|e| format!("metrics: {e}"))?;
    let requests = metric_value(&after, "p2h_front_requests_total")
        - metric_value(&before, "p2h_front_requests_total");
    let batches = metric_value(&after, "p2h_front_batches_total")
        - metric_value(&before, "p2h_front_batches_total");
    if batches == 0 || batches >= requests {
        return Err(format!(
            "coalescing ineffective: {requests} requests dispatched as {batches} batches"
        ));
    }
    println!(
        "front_bench --check: coalescing OK ({requests} requests -> {batches} batches, \
         all bit-identical)"
    );
    handle.shutdown();

    // Phase 2: store-backed serving + zero-downtime reload (this is the leg CI
    // re-runs under P2H_STORE_MMAP=0 and =1).
    let store_dir = std::env::temp_dir().join(format!("p2h-front-check-{}", std::process::id()));
    std::fs::remove_dir_all(&store_dir).ok();
    let store = Store::create(&store_dir).map_err(|e| format!("create store: {e}"))?;
    ShardedIndexBuilder::new(Partitioner::Hash { shards: args.shards }, ShardIndexKind::LinearScan)
        .with_seed(args.seed)
        .build(&points)
        .expect("sharded build")
        .save_into(&store, "bench")
        .map_err(|e| format!("save entry: {e}"))?;

    let handle = FrontServer::from_store(&store_dir, policy(true))
        .map_err(|e| format!("cold start: {e}"))?
        .serve("127.0.0.1:0")
        .map_err(|e| format!("serve: {e}"))?;
    let addr = handle.addr().to_string();
    drive(&addr, &queries, &oracle, 4, 3)?;
    let mut admin = FrontClient::connect(&addr).map_err(|e| format!("connect: {e}"))?;
    let entries = admin.reload().map_err(|e| format!("reload: {e}"))?;
    if entries == 0 {
        return Err("reload reported an empty registry".into());
    }
    drive(&addr, &queries, &oracle, 4, 3)?;
    println!("front_bench --check: store-backed serving + reload OK ({entries} entries)");
    handle.shutdown();
    std::fs::remove_dir_all(&store_dir).ok();
    println!("front_bench --check: PASS (all answers bit-identical to local scan)");
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("front_bench: {message}");
            return ExitCode::FAILURE;
        }
    };
    let outcome = if args.check { run_check(&args) } else { run_bench(&args) };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("front_bench: FAIL: {message}");
            ExitCode::FAILURE
        }
    }
}
