//! Integration tests of the data substrate: catalog coverage, generator statistics, the
//! query protocol, and ground-truth/recall semantics at a slightly larger scale than the
//! unit tests.

use p2h_core::{distance, Scalar};
use p2h_data::{
    generate_queries, large_scale_catalog, paper_catalog, DataDistribution, GroundTruth,
    QueryDistribution, SyntheticDataset,
};

#[test]
fn every_catalog_entry_has_a_distinct_seed_and_name() {
    let mut seeds = std::collections::HashSet::new();
    let mut names = std::collections::HashSet::new();
    for entry in paper_catalog(0.02).iter().chain(large_scale_catalog(0.02).iter()) {
        assert!(seeds.insert(entry.dataset.seed), "duplicate seed {}", entry.dataset.seed);
        assert!(names.insert(entry.dataset.name.clone()), "duplicate name {}", entry.dataset.name);
    }
    assert_eq!(names.len(), 16, "Table II lists 16 data sets");
}

#[test]
fn cluster_generator_produces_lower_within_cluster_spread() {
    // With tiny within-cluster noise the nearest neighbor of most points should be much
    // closer than a random pair of points — the property that makes tree pruning work.
    let ds = SyntheticDataset::new(
        "spread",
        600,
        8,
        DataDistribution::GaussianClusters { clusters: 6, std_dev: 0.05 },
        9,
    );
    let points = ds.generate().unwrap();
    let mut nn_dist_sum = 0.0f64;
    let mut random_dist_sum = 0.0f64;
    let step = 37;
    let mut count = 0usize;
    for i in (0..points.len()).step_by(7) {
        let a = points.point(i);
        let mut nn = f32::INFINITY;
        for j in 0..points.len() {
            if i != j {
                nn = nn.min(distance::euclidean(a, points.point(j)));
            }
        }
        nn_dist_sum += nn as f64;
        random_dist_sum += distance::euclidean(a, points.point((i + step) % points.len())) as f64;
        count += 1;
    }
    assert!(
        nn_dist_sum / count as f64 * 5.0 < random_dist_sum / count as f64,
        "nearest neighbors should be much closer than random pairs in clustered data"
    );
}

#[test]
fn uniform_generator_stays_within_bounds() {
    let ds =
        SyntheticDataset::new("uniform", 2_000, 6, DataDistribution::Uniform { scale: 2.5 }, 3);
    let raw = ds.generate_raw();
    assert!(raw.iter().all(|v| v.abs() <= 2.5));
    // Mean should be near zero in every coordinate.
    for j in 0..6 {
        let mean: Scalar = (0..2_000).map(|i| raw[i * 6 + j]).sum::<Scalar>() / 2_000.0;
        assert!(mean.abs() < 0.2, "coordinate {j} mean {mean} too far from 0");
    }
}

#[test]
fn both_query_protocols_produce_valid_normalized_queries() {
    let points = SyntheticDataset::new(
        "queries",
        400,
        12,
        DataDistribution::Correlated { rank: 3, noise: 0.2 },
        5,
    )
    .generate()
    .unwrap();
    for protocol in [QueryDistribution::DataDifference, QueryDistribution::RandomNormal] {
        let queries = generate_queries(&points, 30, protocol, 7).unwrap();
        assert_eq!(queries.len(), 30);
        for q in &queries {
            assert_eq!(q.dim(), 13);
            assert!(q.norm() >= 1.0, "‖q‖ = sqrt(1 + q_d²) is at least 1");
            assert!(q.coeffs().iter().all(|c| c.is_finite()));
        }
    }
}

#[test]
fn ground_truth_recall_handles_distance_ties() {
    // Duplicate points create ties at the k-th distance; recall must treat any returned
    // point at the tied distance as a hit.
    let mut rows = vec![vec![1.0 as Scalar, 1.0]; 6];
    rows.extend((0..20).map(|i| vec![10.0 + i as Scalar, -5.0]));
    let points = p2h_core::PointSet::augment(&rows).unwrap();
    let queries = generate_queries(&points, 1, QueryDistribution::RandomNormal, 11).unwrap();
    let gt = GroundTruth::compute(&points, &queries, 3, 1);
    // Return three of the duplicates that may differ from the stored tie-broken ids.
    let kth = gt.kth_distance(0);
    let exact_ids: Vec<usize> = gt.neighbors(0).iter().map(|n| n.index).collect();
    let alternative: Vec<usize> = (0..6).filter(|i| !exact_ids.contains(i)).take(3).collect();
    if alternative.len() == 3 && gt.neighbors(0).iter().all(|n| (n.distance - kth).abs() < 1e-6) {
        let distances = vec![kth; 3];
        let recall = gt.recall(0, &alternative, &distances);
        assert!((recall - 1.0).abs() < 1e-9, "tied distances must count as hits");
    }
}

#[test]
fn heavy_tailed_data_is_far_from_unit_hypersphere() {
    // The regime motivating the paper: norms spread over orders of magnitude, where
    // normalized hyperplane hashing loses its guarantees.
    let ds = SyntheticDataset::new(
        "norm-spread",
        3_000,
        24,
        DataDistribution::HeavyTailedNorms { mu: 1.0, sigma: 1.2 },
        13,
    );
    let points = ds.generate().unwrap();
    let norms: Vec<f32> = points.iter().map(|x| distance::norm(&x[..24])).collect();
    let mean = norms.iter().sum::<f32>() / norms.len() as f32;
    let within_10pct = norms.iter().filter(|n| (**n - mean).abs() < 0.1 * mean).count() as f64
        / norms.len() as f64;
    assert!(
        within_10pct < 0.5,
        "most norms should be far from the mean (got {within_10pct:.2} within 10%)"
    );
}
