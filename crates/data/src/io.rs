//! Data-set IO: fvecs, csv, and a native binary format.
//!
//! The paper's data sets are distributed in the `fvecs`/`bvecs` format of the TEXMEX
//! corpus (Sift, Gist) or as plain text. These readers let users run the benchmark
//! harness on the real files when they have them; all built-in experiments use the
//! synthetic generators instead.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use p2h_core::{Error, Result, Scalar};

/// Reads an `fvecs` file: each vector is stored as a little-endian `i32` dimension
/// followed by that many little-endian `f32` components.
///
/// Returns `(raw_dim, flat_row_major_data)`.
///
/// # Errors
///
/// Returns an error if the file cannot be read, is truncated, or contains vectors of
/// inconsistent dimensionality.
pub fn read_fvecs(path: &Path) -> Result<(usize, Vec<Scalar>)> {
    let mut file = File::open(path)?;
    let mut buf = Vec::new();
    file.read_to_end(&mut buf)?;
    parse_fvecs(&buf)
}

/// Parses an in-memory `fvecs` buffer. See [`read_fvecs`].
pub fn parse_fvecs(raw: &[u8]) -> Result<(usize, Vec<Scalar>)> {
    let mut bytes = Bytes::copy_from_slice(raw);
    let mut dim: Option<usize> = None;
    let mut data = Vec::new();
    while bytes.has_remaining() {
        if bytes.remaining() < 4 {
            return Err(Error::Corrupt("truncated fvecs header".into()));
        }
        let d = bytes.get_i32_le();
        if d <= 0 {
            return Err(Error::Corrupt(format!("invalid fvecs dimension {d}")));
        }
        let d = d as usize;
        match dim {
            None => dim = Some(d),
            Some(existing) if existing != d => {
                return Err(Error::DimensionMismatch { expected: existing, actual: d });
            }
            _ => {}
        }
        if bytes.remaining() < 4 * d {
            return Err(Error::Corrupt("truncated fvecs vector".into()));
        }
        for _ in 0..d {
            data.push(bytes.get_f32_le());
        }
    }
    let dim = dim.ok_or(Error::EmptyDataSet)?;
    Ok((dim, data))
}

/// Writes raw row-major vectors to an `fvecs` file.
///
/// # Errors
///
/// Returns an error on I/O failure or if `data.len()` is not a multiple of `dim`.
pub fn write_fvecs(path: &Path, dim: usize, data: &[Scalar]) -> Result<()> {
    if dim == 0 || !data.len().is_multiple_of(dim) {
        return Err(Error::DimensionMismatch { expected: dim, actual: data.len() % dim.max(1) });
    }
    let mut buf = BytesMut::with_capacity(data.len() * 4 + (data.len() / dim) * 4);
    for row in data.chunks_exact(dim) {
        buf.put_i32_le(dim as i32);
        for &v in row {
            buf.put_f32_le(v);
        }
    }
    let mut writer = BufWriter::new(File::create(path)?);
    writer.write_all(&buf)?;
    writer.flush()?;
    Ok(())
}

/// Reads a CSV file of raw points (one point per line, comma-separated floats, no
/// header). Returns `(raw_dim, flat_row_major_data)`.
///
/// # Errors
///
/// Returns an error if the file cannot be read, contains a non-numeric field, or has
/// rows of inconsistent length.
pub fn read_csv(path: &Path) -> Result<(usize, Vec<Scalar>)> {
    let reader = BufReader::new(File::open(path)?);
    let mut dim: Option<usize> = None;
    let mut data = Vec::new();
    for (line_no, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let mut count = 0usize;
        for field in trimmed.split(',') {
            let value: Scalar = field.trim().parse().map_err(|_| {
                Error::Io(format!("line {}: invalid number `{field}`", line_no + 1))
            })?;
            data.push(value);
            count += 1;
        }
        match dim {
            None => dim = Some(count),
            Some(existing) if existing != count => {
                return Err(Error::DimensionMismatch { expected: existing, actual: count });
            }
            _ => {}
        }
    }
    let dim = dim.ok_or(Error::EmptyDataSet)?;
    Ok((dim, data))
}

/// Writes raw row-major vectors as CSV (one point per line).
///
/// # Errors
///
/// Returns an error on I/O failure or shape mismatch.
pub fn write_csv(path: &Path, dim: usize, data: &[Scalar]) -> Result<()> {
    if dim == 0 || !data.len().is_multiple_of(dim) {
        return Err(Error::DimensionMismatch { expected: dim, actual: data.len() % dim.max(1) });
    }
    let mut writer = BufWriter::new(File::create(path)?);
    for row in data.chunks_exact(dim) {
        let line: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
        writeln!(writer, "{}", line.join(","))?;
    }
    writer.flush()?;
    Ok(())
}

const NATIVE_MAGIC: &[u8; 4] = b"P2HD";

/// Writes the native binary format: a 4-byte magic, `u32` dim, `u64` count, then the
/// row-major `f32` payload. Faster to load than fvecs because the count is known upfront.
///
/// # Errors
///
/// Returns an error on I/O failure or shape mismatch.
pub fn write_native(path: &Path, dim: usize, data: &[Scalar]) -> Result<()> {
    if dim == 0 || !data.len().is_multiple_of(dim) {
        return Err(Error::DimensionMismatch { expected: dim, actual: data.len() % dim.max(1) });
    }
    let n = data.len() / dim;
    let mut buf = BytesMut::with_capacity(16 + data.len() * 4);
    buf.put_slice(NATIVE_MAGIC);
    buf.put_u32_le(dim as u32);
    buf.put_u64_le(n as u64);
    for &v in data {
        buf.put_f32_le(v);
    }
    let mut writer = BufWriter::new(File::create(path)?);
    writer.write_all(&buf)?;
    writer.flush()?;
    Ok(())
}

/// Reads the native binary format written by [`write_native`].
///
/// # Errors
///
/// Returns [`Error::Io`] if the file cannot be read and [`Error::Corrupt`] if its
/// content is malformed (bad magic, truncation, or a `dim × count` that overflows).
pub fn read_native(path: &Path) -> Result<(usize, Vec<Scalar>)> {
    let mut file = File::open(path)?;
    let mut raw = Vec::new();
    file.read_to_end(&mut raw)?;
    parse_native_buf(Bytes::from(raw)) // moves the Vec — no second copy of the payload
}

/// Parses an in-memory native-format buffer. See [`read_native`].
///
/// Every malformed input — truncated header or payload, bad magic, zero dimension, or a
/// header whose `dim × count × 4` byte size overflows — returns a typed error; no input
/// can cause a panic or an unbounded allocation. The same hardening backs the snapshot
/// loader in `p2h-store`, which embeds this payload layout in its `PNTS` section.
pub fn parse_native(raw: &[u8]) -> Result<(usize, Vec<Scalar>)> {
    parse_native_buf(Bytes::copy_from_slice(raw))
}

fn parse_native_buf(mut bytes: Bytes) -> Result<(usize, Vec<Scalar>)> {
    if bytes.remaining() < 16 {
        return Err(Error::Corrupt("truncated native header".into()));
    }
    let mut magic = [0u8; 4];
    bytes.copy_to_slice(&mut magic);
    if &magic != NATIVE_MAGIC {
        return Err(Error::Corrupt("bad magic: not a P2HD native file".into()));
    }
    let dim = bytes.get_u32_le() as usize;
    let n = u64_to_usize(bytes.get_u64_le())?;
    if dim == 0 {
        return Err(Error::InvalidDimension(dim));
    }
    // Guard the `n * dim * 4` size arithmetic: a hostile header must yield a typed
    // error, not a wrapped multiplication that under-allocates or panics downstream.
    let scalars = n
        .checked_mul(dim)
        .ok_or_else(|| Error::Corrupt(format!("dim {dim} × count {n} overflows")))?;
    let payload_bytes = scalars
        .checked_mul(4)
        .ok_or_else(|| Error::Corrupt(format!("payload size for {scalars} scalars overflows")))?;
    if bytes.remaining() < payload_bytes {
        return Err(Error::Corrupt("truncated native payload".into()));
    }
    let mut data = Vec::with_capacity(scalars);
    for _ in 0..scalars {
        data.push(bytes.get_f32_le());
    }
    Ok((dim, data))
}

/// Converts a stored `u64` count to `usize`, rejecting values that do not fit (only
/// relevant on 32-bit targets, but the check keeps the format portable).
fn u64_to_usize(v: u64) -> Result<usize> {
    usize::try_from(v).map_err(|_| Error::Corrupt(format!("count {v} does not fit in usize")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut dir = std::env::temp_dir();
        dir.push(format!("p2h-data-io-{}-{}", std::process::id(), name));
        dir
    }

    fn sample() -> (usize, Vec<Scalar>) {
        (3, vec![1.0, 2.0, 3.0, -4.0, 5.5, 6.25, 0.0, -0.5, 9.0])
    }

    #[test]
    fn fvecs_round_trip() {
        let (dim, data) = sample();
        let path = temp_path("roundtrip.fvecs");
        write_fvecs(&path, dim, &data).unwrap();
        let (read_dim, read_data) = read_fvecs(&path).unwrap();
        assert_eq!(read_dim, dim);
        assert_eq!(read_data, data);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn csv_round_trip() {
        let (dim, data) = sample();
        let path = temp_path("roundtrip.csv");
        write_csv(&path, dim, &data).unwrap();
        let (read_dim, read_data) = read_csv(&path).unwrap();
        assert_eq!(read_dim, dim);
        assert_eq!(read_data, data);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn native_round_trip() {
        let (dim, data) = sample();
        let path = temp_path("roundtrip.p2hd");
        write_native(&path, dim, &data).unwrap();
        let (read_dim, read_data) = read_native(&path).unwrap();
        assert_eq!(read_dim, dim);
        assert_eq!(read_data, data);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fvecs_rejects_inconsistent_dims() {
        let mut buf = BytesMut::new();
        buf.put_i32_le(2);
        buf.put_f32_le(1.0);
        buf.put_f32_le(2.0);
        buf.put_i32_le(3);
        buf.put_f32_le(1.0);
        buf.put_f32_le(2.0);
        buf.put_f32_le(3.0);
        assert!(matches!(parse_fvecs(&buf), Err(Error::DimensionMismatch { .. })));
    }

    #[test]
    fn fvecs_rejects_truncation_and_garbage() {
        assert!(matches!(parse_fvecs(&[1, 0]), Err(Error::Corrupt(_))));
        let mut buf = BytesMut::new();
        buf.put_i32_le(4);
        buf.put_f32_le(1.0); // only one of four components
        assert!(matches!(parse_fvecs(&buf), Err(Error::Corrupt(_))));
        let mut neg = BytesMut::new();
        neg.put_i32_le(-1);
        assert!(matches!(parse_fvecs(&neg), Err(Error::Corrupt(_))));
        assert!(matches!(parse_fvecs(&[]), Err(Error::EmptyDataSet)));
    }

    #[test]
    fn csv_rejects_bad_rows() {
        let path = temp_path("bad.csv");
        std::fs::write(&path, "1.0,2.0\n3.0\n").unwrap();
        assert!(matches!(read_csv(&path), Err(Error::DimensionMismatch { .. })));
        std::fs::write(&path, "1.0,abc\n").unwrap();
        assert!(matches!(read_csv(&path), Err(Error::Io(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn native_rejects_bad_magic() {
        let path = temp_path("bad.p2hd");
        std::fs::write(&path, b"NOPE\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00").unwrap();
        assert!(matches!(read_native(&path), Err(Error::Corrupt(_))));
        std::fs::remove_file(&path).ok();
    }

    /// Builds a native header with arbitrary dim/count and `payload_bytes` of payload.
    fn native_frame(dim: u32, count: u64, payload_bytes: usize) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(16 + payload_bytes);
        buf.put_slice(NATIVE_MAGIC);
        buf.put_u32_le(dim);
        buf.put_u64_le(count);
        buf.put_slice(&vec![0u8; payload_bytes]);
        buf.to_vec()
    }

    #[test]
    fn native_rejects_truncation_at_every_boundary() {
        let (dim, data) = sample();
        let mut buf = BytesMut::new();
        buf.put_slice(NATIVE_MAGIC);
        buf.put_u32_le(dim as u32);
        buf.put_u64_le((data.len() / dim) as u64);
        for &v in &data {
            buf.put_f32_le(v);
        }
        let full: Vec<u8> = buf.to_vec();
        assert!(parse_native(&full).is_ok());
        // Every strict prefix must fail with a typed error, never panic.
        for cut in 0..full.len() {
            assert!(
                matches!(parse_native(&full[..cut]), Err(Error::Corrupt(_))),
                "prefix of {cut} bytes should be rejected as corrupt"
            );
        }
    }

    #[test]
    fn native_rejects_dim_count_overflow() {
        // dim × count overflows u64/usize: must be a typed error, not a wrapped
        // multiplication that makes the truncation check pass vacuously.
        let raw = native_frame(u32::MAX, u64::MAX / 2, 64);
        assert!(matches!(parse_native(&raw), Err(Error::Corrupt(_))));
        // scalars × 4 overflows even though dim × count does not.
        let raw = native_frame(2, u64::MAX / 4, 64);
        assert!(matches!(parse_native(&raw), Err(Error::Corrupt(_))));
        // Huge-but-valid header over a tiny payload: truncated, not an allocation.
        let raw = native_frame(1_000_000, 1 << 40, 64);
        assert!(matches!(parse_native(&raw), Err(Error::Corrupt(_))));
        // Zero dimension is rejected before any payload math.
        let raw = native_frame(0, 1, 64);
        assert!(matches!(parse_native(&raw), Err(Error::InvalidDimension(0))));
    }

    #[test]
    fn writers_reject_shape_mismatch() {
        let path = temp_path("never-written");
        assert!(write_fvecs(&path, 4, &[1.0; 3]).is_err());
        assert!(write_csv(&path, 0, &[]).is_err());
        assert!(write_native(&path, 5, &[1.0; 7]).is_err());
        assert!(!path.exists());
    }
}
