//! Exact ground truth for recall evaluation.

use p2h_core::{HyperplaneQuery, Neighbor, PointSet, Scalar, TopKCollector};

/// The exact top-k point-to-hyperplane neighbors of a batch of queries.
///
/// Ground truth is computed by exhaustive scan, parallelized over queries with scoped
/// threads. The recall of any approximate method is then the fraction of its returned
/// indices that appear in the corresponding ground-truth list (Section V-B of the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct GroundTruth {
    k: usize,
    results: Vec<Vec<Neighbor>>,
}

impl GroundTruth {
    /// Computes the exact top-k answers for every query with an exhaustive scan.
    ///
    /// Queries are distributed over `threads` worker threads (clamped to at least 1).
    pub fn compute(
        points: &PointSet,
        queries: &[HyperplaneQuery],
        k: usize,
        threads: usize,
    ) -> Self {
        let k = k.max(1);
        let threads = threads.clamp(1, queries.len().max(1));
        if queries.is_empty() {
            return Self { k, results: Vec::new() };
        }
        let chunk = queries.len().div_ceil(threads);
        let mut results: Vec<Vec<Neighbor>> = vec![Vec::new(); queries.len()];

        std::thread::scope(|scope| {
            let mut remaining: &mut [Vec<Neighbor>] = &mut results;
            for query_chunk in queries.chunks(chunk) {
                let (slot, rest) = remaining.split_at_mut(query_chunk.len().min(remaining.len()));
                remaining = rest;
                scope.spawn(move || {
                    for (q, out) in query_chunk.iter().zip(slot.iter_mut()) {
                        *out = exact_top_k(points, q, k);
                    }
                });
            }
        });

        Self { k, results }
    }

    /// The `k` used for this ground truth.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of queries covered.
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// Whether the ground truth covers no queries.
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }

    /// The exact neighbors of query `i`, sorted by ascending distance.
    pub fn neighbors(&self, i: usize) -> &[Neighbor] {
        &self.results[i]
    }

    /// The exact k-th nearest distance of query `i` (the largest distance in its
    /// ground-truth list).
    pub fn kth_distance(&self, i: usize) -> Scalar {
        self.results[i].last().map_or(Scalar::INFINITY, |n| n.distance)
    }

    /// Recall of a returned index list for query `i`: `|returned ∩ exact| / k`.
    ///
    /// Ties at the k-th distance are treated generously: a returned point whose distance
    /// equals the exact k-th distance counts as a hit even if the tie-break placed a
    /// different index in the stored list. This mirrors the standard recall evaluation
    /// used by ANN benchmarks (and the paper), which compare distances, not identities.
    pub fn recall(&self, i: usize, returned: &[usize], distances: &[Scalar]) -> f64 {
        let exact = &self.results[i];
        if exact.is_empty() {
            return if returned.is_empty() { 1.0 } else { 0.0 };
        }
        let kth = self.kth_distance(i);
        let mut hits = 0usize;
        for (pos, idx) in returned.iter().enumerate() {
            let in_exact = exact.iter().any(|n| n.index == *idx);
            let tie = distances.get(pos).is_some_and(|d| *d <= kth + 1e-6);
            if in_exact || tie {
                hits += 1;
            }
        }
        hits.min(exact.len()) as f64 / exact.len() as f64
    }
}

/// Exhaustive exact top-k for one query.
fn exact_top_k(points: &PointSet, query: &HyperplaneQuery, k: usize) -> Vec<Neighbor> {
    let mut collector = TopKCollector::new(k);
    for (i, x) in points.iter().enumerate() {
        collector.offer(i, query.p2h_distance(x));
    }
    collector.into_sorted_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{DataDistribution, SyntheticDataset};
    use crate::{generate_queries, QueryDistribution};
    use p2h_core::{LinearScan, P2hIndex};

    fn setup() -> (PointSet, Vec<HyperplaneQuery>) {
        let ps = SyntheticDataset::new(
            "gt",
            300,
            8,
            DataDistribution::GaussianClusters { clusters: 4, std_dev: 1.5 },
            21,
        )
        .generate()
        .unwrap();
        let queries = generate_queries(&ps, 8, QueryDistribution::DataDifference, 3).unwrap();
        (ps, queries)
    }

    #[test]
    fn matches_linear_scan() {
        let (ps, queries) = setup();
        let gt = GroundTruth::compute(&ps, &queries, 5, 4);
        let scan = LinearScan::new(ps);
        assert_eq!(gt.len(), queries.len());
        assert_eq!(gt.k(), 5);
        assert!(!gt.is_empty());
        for (i, q) in queries.iter().enumerate() {
            let result = scan.search_exact(q, 5);
            assert_eq!(result.neighbors, gt.neighbors(i).to_vec());
        }
    }

    #[test]
    fn single_thread_equals_multi_thread() {
        let (ps, queries) = setup();
        let a = GroundTruth::compute(&ps, &queries, 3, 1);
        let b = GroundTruth::compute(&ps, &queries, 3, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn recall_of_exact_results_is_one() {
        let (ps, queries) = setup();
        let gt = GroundTruth::compute(&ps, &queries, 10, 2);
        let scan = LinearScan::new(ps);
        for (i, q) in queries.iter().enumerate() {
            let result = scan.search_exact(q, 10);
            let recall = gt.recall(i, &result.indices(), &result.distances());
            assert!((recall - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn recall_of_wrong_results_is_low() {
        let (ps, queries) = setup();
        let gt = GroundTruth::compute(&ps, &queries, 5, 2);
        // Indices that are unlikely to be the nearest, with huge fake distances so the
        // tie rule does not fire.
        let recall = gt.recall(0, &[290, 291, 292, 293, 294], &[1e9; 5]);
        assert!(recall <= 0.4, "recall of arbitrary far points should be low, got {recall}");
    }

    #[test]
    fn recall_partial_overlap() {
        let (ps, queries) = setup();
        let gt = GroundTruth::compute(&ps, &queries, 4, 2);
        let exact: Vec<usize> = gt.neighbors(0).iter().map(|n| n.index).collect();
        let exact_d: Vec<Scalar> = gt.neighbors(0).iter().map(|n| n.distance).collect();
        // Return only the first two exact answers.
        let recall = gt.recall(0, &exact[..2], &exact_d[..2]);
        assert!((recall - 0.5).abs() < 1e-9);
    }

    #[test]
    fn kth_distance_is_largest_in_list() {
        let (ps, queries) = setup();
        let gt = GroundTruth::compute(&ps, &queries, 5, 2);
        for i in 0..gt.len() {
            let kth = gt.kth_distance(i);
            assert!(gt.neighbors(i).iter().all(|n| n.distance <= kth));
        }
    }

    #[test]
    fn empty_queries_is_empty() {
        let (ps, _) = setup();
        let gt = GroundTruth::compute(&ps, &[], 5, 2);
        assert!(gt.is_empty());
        assert_eq!(gt.len(), 0);
    }
}
