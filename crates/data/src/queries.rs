//! Hyperplane query generation.
//!
//! The paper follows the protocol of Huang et al. (SIGMOD'21): for every data set, 100
//! random hyperplane queries are generated. We support two distributions:
//!
//! * [`QueryDistribution::DataDifference`] — the query normal is the difference of two
//!   randomly chosen data points and the offset places the hyperplane between them. This
//!   mirrors the "decision boundary between two samples" structure of the active-learning
//!   motivation and is the default.
//! * [`QueryDistribution::RandomNormal`] — an isotropic Gaussian normal with an offset
//!   drawn so that the hyperplane passes near the data centroid.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use p2h_core::{distance, HyperplaneQuery, PointSet, Result, Scalar};

/// How hyperplane queries are sampled relative to the data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueryDistribution {
    /// Normal = difference of two random data points, hyperplane through their midpoint.
    #[default]
    DataDifference,
    /// Isotropic Gaussian normal, hyperplane passing near the data centroid.
    RandomNormal,
}

/// Generates `count` hyperplane queries for the (augmented) data set `points`.
///
/// The returned queries are in the augmented dimension (`points.dim()`), normalized so
/// that `|⟨x, q⟩|` is the point-to-hyperplane distance.
///
/// # Errors
///
/// Propagates [`p2h_core::Error::DegenerateQuery`] only in the pathological case where a
/// non-degenerate query cannot be constructed after many attempts (e.g. all data points
/// are identical and the distribution is [`QueryDistribution::DataDifference`]).
pub fn generate_queries(
    points: &PointSet,
    count: usize,
    distribution: QueryDistribution,
    seed: u64,
) -> Result<Vec<HyperplaneQuery>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let dim = points.dim();
    let raw_dim = dim - 1;
    let mut queries = Vec::with_capacity(count);
    let centroid = points.centroid();

    let mut attempts = 0usize;
    while queries.len() < count {
        attempts += 1;
        let candidate = match distribution {
            QueryDistribution::DataDifference => {
                let a = points.point(rng.gen_range(0..points.len()));
                let b = points.point(rng.gen_range(0..points.len()));
                // Normal = a - b over the raw coordinates; midpoint offset.
                let mut normal = vec![0.0 as Scalar; raw_dim];
                let mut offset = 0.0;
                for j in 0..raw_dim {
                    normal[j] = a[j] - b[j];
                    offset -= normal[j] * 0.5 * (a[j] + b[j]);
                }
                HyperplaneQuery::from_normal_and_bias(&normal, offset)
            }
            QueryDistribution::RandomNormal => {
                let mut normal = vec![0.0 as Scalar; raw_dim];
                for value in normal.iter_mut() {
                    // Sum of uniforms is close enough to Gaussian for a direction.
                    *value = rng.gen_range(-1.0..1.0) + rng.gen_range(-1.0..1.0);
                }
                let through: Scalar = -distance::dot(&normal, &centroid[..raw_dim]);
                let jitter: Scalar = rng.gen_range(-0.5..0.5);
                HyperplaneQuery::from_normal_and_bias(&normal, through + jitter)
            }
        };
        match candidate {
            Ok(q) => queries.push(q),
            Err(err) => {
                // Identical points (or an all-zero normal) produce degenerate queries;
                // retry a bounded number of times, then surface the error.
                if attempts > count * 100 + 1000 {
                    return Err(err);
                }
            }
        }
    }
    Ok(queries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{DataDistribution, SyntheticDataset};
    use p2h_core::Error;

    fn dataset() -> PointSet {
        SyntheticDataset::new(
            "q-test",
            200,
            6,
            DataDistribution::GaussianClusters { clusters: 3, std_dev: 1.0 },
            9,
        )
        .generate()
        .unwrap()
    }

    #[test]
    fn generates_requested_count_and_dim() {
        let ps = dataset();
        for dist in [QueryDistribution::DataDifference, QueryDistribution::RandomNormal] {
            let queries = generate_queries(&ps, 25, dist, 1).unwrap();
            assert_eq!(queries.len(), 25);
            for q in &queries {
                assert_eq!(q.dim(), ps.dim());
                // Normalization invariant: the first d-1 coordinates have unit norm.
                let d = q.dim();
                assert!((distance::norm(&q.coeffs()[..d - 1]) - 1.0).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let ps = dataset();
        let a = generate_queries(&ps, 10, QueryDistribution::DataDifference, 5).unwrap();
        let b = generate_queries(&ps, 10, QueryDistribution::DataDifference, 5).unwrap();
        assert_eq!(a, b);
        let c = generate_queries(&ps, 10, QueryDistribution::DataDifference, 6).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn data_difference_queries_pass_between_points() {
        // A data-difference hyperplane passes through the midpoint of two data points, so
        // at least one data point must be reasonably close to it relative to the data
        // scale: the minimum distance over the data set should be far below the maximum.
        let ps = dataset();
        let queries = generate_queries(&ps, 5, QueryDistribution::DataDifference, 2).unwrap();
        for q in &queries {
            let mut min = Scalar::INFINITY;
            let mut max = 0.0 as Scalar;
            for x in ps.iter() {
                let d = q.p2h_distance(x);
                min = min.min(d);
                max = max.max(d);
            }
            assert!(min < max * 0.5, "min={min} max={max}");
        }
    }

    #[test]
    fn degenerate_data_eventually_errors() {
        // All points identical: every data-difference normal is zero.
        let rows = vec![vec![1.0 as Scalar, 2.0]; 10];
        let ps = PointSet::augment(&rows).unwrap();
        let result = generate_queries(&ps, 3, QueryDistribution::DataDifference, 0);
        assert!(matches!(result, Err(Error::DegenerateQuery)));
    }

    #[test]
    fn random_normal_works_on_degenerate_data() {
        let rows = vec![vec![1.0 as Scalar, 2.0]; 10];
        let ps = PointSet::augment(&rows).unwrap();
        let queries = generate_queries(&ps, 3, QueryDistribution::RandomNormal, 0).unwrap();
        assert_eq!(queries.len(), 3);
    }
}
