//! # p2h-data
//!
//! Data substrate for the P2HNNS workspace: synthetic data-set generators that stand in
//! for the paper's 16 real-world data sets, hyperplane query generation following the
//! protocol of Huang et al. (SIGMOD'21), exact ground-truth computation, and simple
//! data-set IO (fvecs / csv / a native binary format).
//!
//! ## Why synthetic data sets?
//!
//! The paper evaluates on real data sets (Music, GloVe, Sift, …, Deep100M). Those files
//! are not redistributable here, so every experiment in this repository uses synthetic
//! generators with matched dimensionality and (scaled) cardinality. The tree and hashing
//! algorithms interact with the data only through Euclidean geometry — centroids, radii,
//! angles, norms and inner products — and the generators expose knobs for exactly those
//! properties (cluster structure, anisotropy, norm spread). See `DESIGN.md` §5 for the
//! substitution rationale.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod catalog;
mod ground_truth;
mod io;
mod queries;
mod synthetic;

pub use catalog::{large_scale_catalog, paper_catalog, profile_catalog, DatasetEntry};
pub use ground_truth::GroundTruth;
pub use io::{
    parse_fvecs, parse_native, read_csv, read_fvecs, read_native, write_csv, write_fvecs,
    write_native,
};
pub use queries::{generate_queries, QueryDistribution};
pub use synthetic::{DataDistribution, SyntheticDataset};
