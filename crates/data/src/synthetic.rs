//! Synthetic data-set generators.
//!
//! Each generator produces raw points `p ∈ R^{raw_dim}`, which are then augmented to
//! `x = (p; 1)` via [`PointSet::augment_flat`]. The distributions are chosen to cover the
//! geometric regimes of the paper's real data sets:
//!
//! * [`DataDistribution::GaussianClusters`] — well-separated clusters (image descriptor
//!   sets such as Sift, Cifar-10, Sun behave this way): Ball-Tree radii shrink quickly
//!   and pruning is effective.
//! * [`DataDistribution::Correlated`] — points on a low-rank subspace plus noise (text
//!   embeddings such as GloVe, Enron): anisotropic balls, moderate pruning.
//! * [`DataDistribution::Uniform`] — worst-case isotropic data with little structure.
//! * [`DataDistribution::HeavyTailedNorms`] — log-normal norm spread (rating / audio
//!   data such as Music, Msong); exercises the non-normalized regime in which the
//!   hyperplane hashing schemes lose their locality sensitivity.

use rand::distributions::Distribution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use p2h_core::{PointSet, Result, Scalar};

/// The family of synthetic raw-point distributions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DataDistribution {
    /// A mixture of `clusters` isotropic Gaussian blobs with the given within-cluster
    /// standard deviation. Cluster centers are drawn uniformly from `[-10, 10]^d`.
    GaussianClusters {
        /// Number of mixture components.
        clusters: usize,
        /// Within-cluster standard deviation.
        std_dev: Scalar,
    },
    /// Low-rank structure: points are `B·z + ε` where `B` is a random `d×rank` matrix,
    /// `z` is standard normal in `R^rank` and `ε` is isotropic noise.
    Correlated {
        /// Dimension of the latent subspace.
        rank: usize,
        /// Standard deviation of the additive isotropic noise.
        noise: Scalar,
    },
    /// Uniform on `[-scale, scale]^d`.
    Uniform {
        /// Half-width of the cube.
        scale: Scalar,
    },
    /// Standard normal directions scaled by log-normal radii, producing a heavy-tailed
    /// norm distribution (data far from the unit hypersphere).
    HeavyTailedNorms {
        /// Mean of the underlying normal of the log-normal radius.
        mu: Scalar,
        /// Standard deviation of the underlying normal of the log-normal radius.
        sigma: Scalar,
    },
}

/// A fully specified synthetic data set: distribution, cardinality, dimension, and seed.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticDataset {
    /// Human-readable name (used in reports; mirrors the paper's data-set names).
    pub name: String,
    /// Number of points to generate.
    pub n: usize,
    /// Raw dimensionality `d - 1` (before the append-one augmentation).
    pub raw_dim: usize,
    /// Generating distribution.
    pub distribution: DataDistribution,
    /// RNG seed, so every experiment is reproducible.
    pub seed: u64,
}

impl SyntheticDataset {
    /// Creates a specification with the given name, size and distribution.
    pub fn new(
        name: impl Into<String>,
        n: usize,
        raw_dim: usize,
        distribution: DataDistribution,
        seed: u64,
    ) -> Self {
        Self { name: name.into(), n, raw_dim, distribution, seed }
    }

    /// Dimensionality of the augmented points this data set will produce.
    pub fn augmented_dim(&self) -> usize {
        self.raw_dim + 1
    }

    /// Generates the raw (non-augmented) points as a flat row-major buffer.
    pub fn generate_raw(&self) -> Vec<Scalar> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let d = self.raw_dim;
        let mut data = vec![0.0 as Scalar; self.n * d];
        match self.distribution {
            DataDistribution::GaussianClusters { clusters, std_dev } => {
                let clusters = clusters.max(1);
                let mut centers = vec![0.0 as Scalar; clusters * d];
                for c in centers.iter_mut() {
                    *c = rng.gen_range(-10.0..10.0);
                }
                for i in 0..self.n {
                    let cluster = rng.gen_range(0..clusters);
                    let center = &centers[cluster * d..(cluster + 1) * d];
                    let row = &mut data[i * d..(i + 1) * d];
                    for (j, value) in row.iter_mut().enumerate() {
                        *value = center[j] + std_dev * standard_normal(&mut rng);
                    }
                }
            }
            DataDistribution::Correlated { rank, noise } => {
                let rank = rank.clamp(1, d);
                // Random basis B (d x rank), entries ~ N(0, 1)/sqrt(rank).
                let scale = 1.0 / (rank as Scalar).sqrt();
                let basis: Vec<Scalar> =
                    (0..d * rank).map(|_| standard_normal(&mut rng) * scale).collect();
                let mut latent = vec![0.0 as Scalar; rank];
                for i in 0..self.n {
                    for z in latent.iter_mut() {
                        *z = standard_normal(&mut rng) * 5.0;
                    }
                    let row = &mut data[i * d..(i + 1) * d];
                    for (j, value) in row.iter_mut().enumerate() {
                        let mut acc = 0.0;
                        for (r, &z) in latent.iter().enumerate() {
                            acc += basis[j * rank + r] * z;
                        }
                        *value = acc + noise * standard_normal(&mut rng);
                    }
                }
            }
            DataDistribution::Uniform { scale } => {
                for value in data.iter_mut() {
                    *value = rng.gen_range(-scale..scale);
                }
            }
            DataDistribution::HeavyTailedNorms { mu, sigma } => {
                for i in 0..self.n {
                    let row = &mut data[i * d..(i + 1) * d];
                    let mut norm_sq = 0.0;
                    for value in row.iter_mut() {
                        *value = standard_normal(&mut rng);
                        norm_sq += *value * *value;
                    }
                    let norm = norm_sq.sqrt().max(Scalar::EPSILON);
                    let radius = (mu + sigma * standard_normal(&mut rng)).exp();
                    for value in row.iter_mut() {
                        *value *= radius / norm;
                    }
                }
            }
        }
        data
    }

    /// Generates the data set and returns the augmented [`PointSet`] (`x = (p; 1)`).
    pub fn generate(&self) -> Result<PointSet> {
        let raw = self.generate_raw();
        PointSet::augment_flat(self.raw_dim, &raw)
    }

    /// Size in bytes of the raw data (the "Data Size" column of Table II).
    pub fn raw_size_bytes(&self) -> usize {
        self.n * self.raw_dim * std::mem::size_of::<Scalar>()
    }
}

/// Samples a standard normal value using the Box–Muller transform.
///
/// `rand` 0.8 ships `Standard`/uniform distributions but the normal distribution lives in
/// `rand_distr`, which is outside the allowed dependency set, so we roll the two-line
/// Box–Muller here.
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> Scalar {
    let u1: f64 = rand::distributions::Open01.sample(rng);
    let u2: f64 = rng.gen::<f64>();
    ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as Scalar
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2h_core::distance;

    fn spec(dist: DataDistribution) -> SyntheticDataset {
        SyntheticDataset::new("test", 500, 8, dist, 42)
    }

    #[test]
    fn generates_requested_shape() {
        for dist in [
            DataDistribution::GaussianClusters { clusters: 5, std_dev: 1.0 },
            DataDistribution::Correlated { rank: 3, noise: 0.1 },
            DataDistribution::Uniform { scale: 2.0 },
            DataDistribution::HeavyTailedNorms { mu: 1.0, sigma: 0.5 },
        ] {
            let ds = spec(dist);
            let ps = ds.generate().unwrap();
            assert_eq!(ps.len(), 500);
            assert_eq!(ps.dim(), 9, "augmented dimension is raw_dim + 1");
            assert_eq!(ds.augmented_dim(), 9);
            // Last coordinate of every point is the appended 1.
            for p in ps.iter() {
                assert_eq!(p[8], 1.0);
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = spec(DataDistribution::Uniform { scale: 1.0 }).generate_raw();
        let b = spec(DataDistribution::Uniform { scale: 1.0 }).generate_raw();
        assert_eq!(a, b);
        let mut other = spec(DataDistribution::Uniform { scale: 1.0 });
        other.seed = 7;
        assert_ne!(a, other.generate_raw());
    }

    #[test]
    fn gaussian_clusters_are_clustered() {
        // With tiny within-cluster noise, the average pairwise distance within the data
        // must be dominated by the between-cluster distances; just check the data is not
        // collapsed to a single point and spans a reasonable range.
        let ds = SyntheticDataset::new(
            "clusters",
            400,
            4,
            DataDistribution::GaussianClusters { clusters: 4, std_dev: 0.01 },
            3,
        );
        let raw = ds.generate_raw();
        let min = raw.iter().cloned().fold(Scalar::INFINITY, Scalar::min);
        let max = raw.iter().cloned().fold(Scalar::NEG_INFINITY, Scalar::max);
        assert!(max - min > 1.0, "cluster centers should be spread out");
    }

    #[test]
    fn heavy_tailed_norms_have_spread() {
        let ds = SyntheticDataset::new(
            "heavy",
            2000,
            16,
            DataDistribution::HeavyTailedNorms { mu: 1.0, sigma: 1.0 },
            11,
        );
        let raw = ds.generate_raw();
        let norms: Vec<Scalar> =
            (0..2000).map(|i| distance::norm(&raw[i * 16..(i + 1) * 16])).collect();
        let min = norms.iter().cloned().fold(Scalar::INFINITY, Scalar::min);
        let max = norms.iter().cloned().fold(Scalar::NEG_INFINITY, Scalar::max);
        assert!(
            max / min > 5.0,
            "log-normal radii should produce a wide norm spread (min={min}, max={max})"
        );
    }

    #[test]
    fn correlated_data_is_low_rank_dominated() {
        let ds = SyntheticDataset::new(
            "corr",
            500,
            16,
            DataDistribution::Correlated { rank: 2, noise: 0.01 },
            5,
        );
        let ps = ds.generate().unwrap();
        assert_eq!(ps.dim(), 17);
        // Sanity: variance is not spread uniformly; at least some coordinates correlate.
        // (A full PCA check would need linear algebra; verifying generation succeeds and
        // values are finite is enough for the generator contract.)
        assert!(ps.as_flat().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn raw_size_bytes_matches_table2_formula() {
        let ds = spec(DataDistribution::Uniform { scale: 1.0 });
        assert_eq!(ds.raw_size_bytes(), 500 * 8 * 4);
    }
}
