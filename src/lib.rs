//! # p2hnns — Point-to-Hyperplane Nearest Neighbor Search
//!
//! A Rust implementation of "Lightweight-Yet-Efficient: Revitalizing Ball-Tree for
//! Point-to-Hyperplane Nearest Neighbor Search" (Huang & Tung, ICDE 2023): the Ball-Tree
//! and BC-Tree indexes for finding the data points closest to a hyperplane query,
//! together with the NH/FH hashing baselines, synthetic data generators, an evaluation
//! harness, and a benchmark suite reproducing every table and figure of the paper.
//!
//! This facade crate re-exports the public API of the workspace crates under one roof:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`core`] | `p2h-core` | [`PointSet`], [`HyperplaneQuery`], [`P2hIndex`], [`LinearScan`], top-k, distances |
//! | [`balltree`] | `p2h-balltree` | [`BallTree`], [`BallTreeBuilder`] (Section III) |
//! | [`bctree`] | `p2h-bctree` | [`BcTree`], [`BcTreeBuilder`], [`BcTreeVariant`] (Section IV) |
//! | [`hash`] | `p2h-hash` | [`NhIndex`], [`FhIndex`] baselines (Huang et al., SIGMOD'21) |
//! | [`data`] | `p2h-data` | synthetic data sets, query generation, ground truth, IO |
//! | [`eval`] | `p2h-eval` | recall/time evaluation, sweeps, time profiles, reports |
//!
//! ## Quickstart
//!
//! ```
//! use p2hnns::{BcTreeBuilder, HyperplaneQuery, P2hIndex, PointSet};
//!
//! // Three raw 2-D points; the library appends the constant 1 internally.
//! let points = PointSet::augment(&[
//!     vec![0.0, 0.0],
//!     vec![1.0, 1.0],
//!     vec![4.0, 0.5],
//! ]).unwrap();
//!
//! // The hyperplane x + y - 1.8 = 0.
//! let query = HyperplaneQuery::from_normal_and_bias(&[1.0, 1.0], -1.8).unwrap();
//!
//! let index = BcTreeBuilder::new(2).build(&points).unwrap();
//! let result = index.search_exact(&query, 1);
//! assert_eq!(result.neighbors[0].index, 1); // (1, 1) is nearest to the hyperplane
//! ```
//!
//! See the `examples/` directory for end-to-end scenarios (SVM active learning,
//! maximum-margin style selection, index comparison) and the `p2h-bench` crate for the
//! reproduction of the paper's evaluation.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use p2h_balltree as balltree;
pub use p2h_bctree as bctree;
pub use p2h_core as core;
pub use p2h_data as data;
pub use p2h_eval as eval;
pub use p2h_hash as hash;

pub use p2h_balltree::{BallTree, BallTreeBuilder};
pub use p2h_bctree::{BcTree, BcTreeBuilder, BcTreeVariant};
pub use p2h_core::{
    distance, BranchPreference, Error, HyperplaneQuery, LinearScan, Neighbor, P2hIndex, PointSet,
    Result, Scalar, SearchParams, SearchResult, SearchStats, TopKCollector,
};
pub use p2h_data::{
    generate_queries, DataDistribution, GroundTruth, QueryDistribution, SyntheticDataset,
};
pub use p2h_eval::{evaluate, sweep_budgets, time_profile, MethodEvaluation, TimeProfile};
pub use p2h_hash::{FhIndex, FhParams, NhIndex, NhParams};
