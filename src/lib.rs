//! # p2hnns — Point-to-Hyperplane Nearest Neighbor Search
//!
//! A Rust implementation of "Lightweight-Yet-Efficient: Revitalizing Ball-Tree for
//! Point-to-Hyperplane Nearest Neighbor Search" (Huang & Tung, ICDE 2023): the Ball-Tree
//! and BC-Tree indexes for finding the data points closest to a hyperplane query,
//! together with the NH/FH hashing baselines, synthetic data generators, an evaluation
//! harness, and a benchmark suite reproducing every table and figure of the paper.
//!
//! This facade crate re-exports the public API of the workspace crates under one roof:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`core`] | `p2h-core` | [`PointSet`], [`HyperplaneQuery`], [`P2hIndex`], [`LinearScan`], top-k, distances |
//! | [`balltree`] | `p2h-balltree` | [`BallTree`], [`BallTreeBuilder`] (Section III) |
//! | [`bctree`] | `p2h-bctree` | [`BcTree`], [`BcTreeBuilder`], [`BcTreeVariant`] (Section IV) |
//! | [`hash`] | `p2h-hash` | [`NhIndex`], [`FhIndex`] baselines (Huang et al., SIGMOD'21) |
//! | [`data`] | `p2h-data` | synthetic data sets, query generation, ground truth, IO |
//! | [`eval`] | `p2h-eval` | recall/time evaluation (sequential + parallel), sweeps, time profiles, reports |
//! | [`engine`] | `p2h-engine` | concurrent batch-query serving: index registry, parallel batch executor, latency histograms |
//! | [`store`] | `p2h-store` | persistent snapshots: checksummed container, directory store, shard groups |
//! | [`shard`] | `p2h-shard` | sharded serving: partitioners, per-shard builds, deterministic fan-out top-k merge |
//! | [`obs`] | `p2h-obs` | observability: lock-free metrics registry, mergeable log-bucket histograms, Prometheus text exposition, sampled query tracing, deterministic fault injection |
//! | [`net`] | `p2h-net` | fault-tolerant distributed serving: TCP shard servers, replicated router with retries, hedged requests, and replica cross-checking |
//! | [`live`] | `p2h-live` | online updates: WAL-backed mutable memtable tier over immutable bases, epoch compaction, bit-identical layered serving |
//! | [`front`] | `p2h-front` | serving front-end: poll(2) event loops, dynamic batching (coalescing), admission control with typed load shedding, zero-downtime engine reloads |
//!
//! ## Quickstart
//!
//! ```
//! use p2hnns::{BcTreeBuilder, HyperplaneQuery, P2hIndex, PointSet};
//!
//! // Three raw 2-D points; the library appends the constant 1 internally.
//! let points = PointSet::augment(&[
//!     vec![0.0, 0.0],
//!     vec![1.0, 1.0],
//!     vec![4.0, 0.5],
//! ]).unwrap();
//!
//! // The hyperplane x + y - 1.8 = 0.
//! let query = HyperplaneQuery::from_normal_and_bias(&[1.0, 1.0], -1.8).unwrap();
//!
//! let index = BcTreeBuilder::new(2).build(&points).unwrap();
//! let result = index.search_exact(&query, 1);
//! assert_eq!(result.neighbors[0].index, 1); // (1, 1) is nearest to the hyperplane
//! ```
//!
//! ## Serving query batches concurrently
//!
//! Single queries answer on one core. For serving-style workloads, the [`engine`] layer
//! shares one immutable index across worker threads ([`P2hIndex`] is `Send + Sync`),
//! executes batches in parallel with **bit-identical results to sequential execution**,
//! and reports latency percentiles:
//!
//! ```
//! use p2hnns::engine::{BatchRequest, Engine};
//! use p2hnns::{generate_queries, BcTreeBuilder, DataDistribution, QueryDistribution,
//!              SearchParams, SyntheticDataset};
//!
//! let points = SyntheticDataset::new(
//!     "quickstart-engine", 2_000, 16,
//!     DataDistribution::GaussianClusters { clusters: 4, std_dev: 1.5 }, 1,
//! ).generate().unwrap();
//!
//! // Parallel recursive construction (feature `parallel`, enabled by the facade);
//! // deterministic for a given seed regardless of thread count.
//! let tree = BcTreeBuilder::new(64).build_parallel(&points, 0).unwrap();
//!
//! let engine = Engine::new(0); // 0 = one worker thread per CPU
//! engine.registry().register("bc", tree);
//!
//! let queries = generate_queries(&points, 8, QueryDistribution::DataDifference, 2).unwrap();
//! let request = BatchRequest::new(queries, SearchParams::exact(10))
//!     .with_override(0, SearchParams::approximate(10, 200)); // per-query params
//!
//! let response = engine.serve("bc", &request).unwrap();
//! assert_eq!(response.results.len(), 8);
//! println!("{} qps, {}", response.throughput_qps(), response.latency.summary_ms());
//! ```
//!
//! ## Sharded serving
//!
//! For data sets beyond one index's comfort zone, the [`shard`] layer partitions the
//! points across several indexes and fans every query out with a deterministic top-k
//! merge. Because the [`Neighbor`] order is total and every shard computes distances
//! with the same kernels, the merged answer is **bit-identical** to an unsharded
//! index over the same points — sharding is purely an operational decision:
//!
//! ```
//! use p2hnns::shard::{Partitioner, ShardIndexKind, ShardedIndexBuilder};
//! use p2hnns::engine::{BatchRequest, Engine};
//! use p2hnns::{generate_queries, DataDistribution, LinearScan, P2hIndex,
//!              QueryDistribution, SearchParams, SyntheticDataset};
//!
//! let points = SyntheticDataset::new(
//!     "quickstart-shard", 3_000, 12,
//!     DataDistribution::GaussianClusters { clusters: 4, std_dev: 1.5 }, 2,
//! ).generate().unwrap();
//!
//! // 4 hash-scattered shards, one BC-Tree per shard.
//! let sharded = ShardedIndexBuilder::new(
//!     Partitioner::Hash { shards: 4 },
//!     ShardIndexKind::BcTree { leaf_size: 64 },
//! ).build(&points).unwrap();
//!
//! let engine = Engine::new(0);
//! engine.registry().register_sharded("p2h", sharded);
//!
//! let queries = generate_queries(&points, 4, QueryDistribution::DataDifference, 9).unwrap();
//! let request = BatchRequest::new(queries, SearchParams::exact(5));
//!
//! // Same `BatchRequest` API as any other index; `serve_sharded` adds per-shard
//! // latency histograms and fans each query across the shards.
//! let response = engine.serve("p2h", &request).unwrap();
//! let fanout = engine.serve_sharded("p2h", &request).unwrap();
//! assert_eq!(fanout.per_shard_latency.len(), 4);
//!
//! // Bit-identical to the unsharded oracle.
//! let oracle = LinearScan::new(points);
//! for (i, result) in response.results.iter().enumerate() {
//!     let expected = oracle.search(&request.queries[i], request.params_for(i));
//!     assert_eq!(result.neighbors, expected.neighbors);
//!     assert_eq!(result.neighbors, fanout.results[i].neighbors);
//! }
//! ```
//!
//! ## Metrics and tracing
//!
//! Serving is instrumented end to end: every `Engine::serve`/`serve_sharded` call
//! records per-index query-latency histograms, batch sizes, per-shard latency, and
//! every [`SearchStats`] counter into a process-wide lock-free registry ([`obs`]),
//! and the store layer publishes snapshot load timings split into read/CRC/decode
//! stages. `Engine::render_metrics` returns the whole registry in Prometheus text
//! exposition format; recording costs no per-query allocation or atomics (see
//! `docs/OBSERVABILITY.md` for the metric catalog and the `P2H_TRACE` sampled
//! query-tracing facility):
//!
//! ```
//! use p2hnns::engine::{BatchRequest, Engine};
//! use p2hnns::{generate_queries, BcTreeBuilder, DataDistribution, QueryDistribution,
//!              SearchParams, SyntheticDataset};
//!
//! let points = SyntheticDataset::new(
//!     "quickstart-metrics", 2_000, 12,
//!     DataDistribution::GaussianClusters { clusters: 4, std_dev: 1.5 }, 4,
//! ).generate().unwrap();
//! let tree = BcTreeBuilder::new(64).build(&points).unwrap();
//!
//! let engine = Engine::new(0);
//! engine.registry().register("bc", tree);
//! let queries = generate_queries(&points, 8, QueryDistribution::DataDifference, 6).unwrap();
//! engine.serve("bc", &BatchRequest::new(queries, SearchParams::exact(5))).unwrap();
//!
//! // Prometheus text exposition: scrape-ready, deterministic ordering.
//! let dump = engine.render_metrics();
//! assert!(dump.contains("p2h_query_latency_ns_bucket{index=\"bc\""));
//!
//! // Or inspect programmatically: p99 from the streaming log-bucket histogram.
//! let snapshot = engine.metrics_snapshot();
//! let series = snapshot.series("p2h_query_latency_ns", &[("index", "bc")]).unwrap();
//! let p99_ns = series.value.histogram().unwrap().quantile(0.99);
//! assert!(p99_ns > 0);
//! ```
//!
//! A sharded index persists as a *shard group* — one snapshot per shard plus an
//! id-map file, committed atomically through the store manifest
//! (`ShardedIndex::save_into`), and [`engine::Engine::from_store`] cold-starts it
//! together with every other index in the directory.
//!
//! ## Zero-copy cold start
//!
//! Snapshots (format v2) keep every array payload 8-byte aligned, so a serving
//! process can cold-start by **memory-mapping** the snapshot files instead of copying
//! them: pass [`LoadMode::Mmap`] (or set `P2H_STORE_MMAP=1`) and every large
//! read-only array — point payloads, tree centers, id permutations, projection
//! tables — becomes a [`VecBuf`] view into the mapping. Startup cost drops to one
//! checksum pass per file, peak RSS no longer doubles, and the page cache shares the
//! bytes between every process serving the same store. Answers are **bit-identical**
//! to a copying or freshly built index:
//!
//! ```
//! use p2hnns::engine::{BatchRequest, Engine};
//! use p2hnns::{generate_queries, BcTreeBuilder, DataDistribution, LoadMode, P2hIndex,
//!              QueryDistribution, SearchParams, Store, SyntheticDataset};
//!
//! let points = SyntheticDataset::new(
//!     "quickstart-mmap", 2_000, 12,
//!     DataDistribution::GaussianClusters { clusters: 4, std_dev: 1.5 }, 3,
//! ).generate().unwrap();
//! let tree = BcTreeBuilder::new(64).build(&points).unwrap();
//!
//! // Offline: snapshot once.
//! let dir = std::env::temp_dir().join("p2hnns-quickstart-mmap");
//! # std::fs::remove_dir_all(&dir).ok();
//! let store = Store::create(&dir).unwrap();
//! store.save("bc", &tree).unwrap();
//!
//! // Serving: zero-copy cold start — the tree's arrays are views into the mapping.
//! let engine = Engine::from_store_with(&dir, 0, LoadMode::Mmap).unwrap();
//! let queries = generate_queries(&points, 4, QueryDistribution::DataDifference, 5).unwrap();
//! let request = BatchRequest::new(queries, SearchParams::exact(5));
//! let served = engine.serve("bc", &request).unwrap();
//!
//! // Bit-identical to the in-memory build.
//! for (result, query) in served.results.iter().zip(&request.queries) {
//!     let expected = tree.search(query, &SearchParams::exact(5));
//!     assert_eq!(result.neighbors, expected.neighbors);
//! }
//! # std::fs::remove_dir_all(&dir).ok();
//! ```
//!
//! ## Online updates
//!
//! Every index above is immutable once built — the paper's active-learning workload,
//! though, *streams*: label the points nearest the current hyperplane, insert new
//! candidates, re-query. The [`live`] layer closes that loop with an LSM-style tier:
//! a memtable of recent inserts (scanned through the same dispatched kernels) plus a
//! tombstone set, layered over an immutable base snapshot, with every mutation made
//! durable by a CRC-framed, fsync-batched **write-ahead log** before it is
//! acknowledged. Layered answers are **bit-identical** to a full rebuild over the
//! same live points, a background [`LiveIndex::compact`] folds the memtable into a
//! fresh Ball-Tree committed as a new store epoch (serving continues throughout),
//! and `kill -9` at any instant loses no acknowledged write — see
//! `docs/ONLINE_UPDATES.md` for the durability contract and WAL format:
//!
//! ```
//! use p2hnns::engine::{BatchRequest, Engine};
//! use p2hnns::{HyperplaneQuery, LiveIndex, SearchParams, Store};
//!
//! let dir = std::env::temp_dir().join("p2hnns-quickstart-live");
//! # std::fs::remove_dir_all(&dir).ok();
//! let store = Store::create(&dir).unwrap();
//! let engine = Engine::new(0);
//! engine.register_live("stream", LiveIndex::create(&store, "stream", 3).unwrap());
//!
//! // Mutations are durable (WAL-appended and fsynced) when they return.
//! engine.live_insert("stream", &[vec![0.0, 0.0], vec![1.0, 1.0], vec![4.0, 0.5]]).unwrap();
//! engine.live_delete("stream", 1).unwrap();
//!
//! let query = HyperplaneQuery::from_normal_and_bias(&[1.0, 1.0], -1.8).unwrap();
//! let request = BatchRequest::new(vec![query], SearchParams::exact(1));
//! let response = engine.serve_live("stream", &request).unwrap();
//! assert_eq!(response.results[0].neighbors[0].index, 0);
//!
//! // Fold the memtable into a compacted Ball-Tree base (a new store epoch), then
//! // cold-start: the manifest's live entry replays to the identical state.
//! engine.live("stream").unwrap().compact().unwrap();
//! let restarted = Engine::from_store(&dir, 0).unwrap();
//! let again = restarted.serve_live("stream", &request).unwrap();
//! assert_eq!(response.results[0].neighbors, again.results[0].neighbors);
//! # std::fs::remove_dir_all(&dir).ok();
//! ```
//!
//! ## Distributed serving
//!
//! The [`net`] layer takes the sharded fan-out across processes: `shard-server`
//! binaries cold-start shards from a snapshot store and answer query slices over a
//! length-prefixed, checksummed TCP protocol, while a client-side [`Router`] fans
//! batches out over per-shard replica sets with deadlines, deterministic
//! retry/backoff, hedged requests, and optional replica cross-checking. Queries and
//! distances travel as raw bits (no re-normalization on either side), and the
//! router reuses the local deterministic merge — so routed answers stay
//! **bit-identical** to local serving even while replicas are being `kill -9`ed
//! mid-batch, and every failure is a typed [`NetError`], never a silent wrong bit.
//! Degraded (partial) answers are strictly opt-in and always carry the missing-shard
//! list. `Engine::serve_remote` is the batch entry point; a deterministic
//! fault-injection layer (`P2H_FAULTS`, see `docs/NETWORKING.md`) makes the failure
//! handling testable end to end.
//!
//! ## The serving front-end
//!
//! The [`front`] layer puts a production-shaped TCP front door on an engine:
//! concurrent single queries from many connections **coalesce** into engine
//! batches under a tunable `max_batch`/`max_delay` policy (answers stay
//! bit-identical to serving each query alone — batching is pure throughput), a
//! bounded admission queue sheds overload and lapsed deadlines with **typed**
//! errors, a `Reload` request swaps in a freshly cold-started engine with zero
//! dropped requests, and `MetricsRequest` serves the Prometheus registry over the
//! same socket. See `docs/SERVING.md` for the protocol and operations guide:
//!
//! ```
//! use p2hnns::front::{FrontClient, FrontConfig, FrontServer};
//! use p2hnns::engine::{BatchRequest, Engine};
//! use p2hnns::{generate_queries, BcTreeBuilder, DataDistribution, QueryDistribution,
//!              SearchParams, SyntheticDataset};
//!
//! let points = SyntheticDataset::new(
//!     "quickstart-front", 1_500, 12,
//!     DataDistribution::GaussianClusters { clusters: 4, std_dev: 1.5 }, 8,
//! ).generate().unwrap();
//! let engine = std::sync::Arc::new(Engine::new(2));
//! engine.registry().register("bc", BcTreeBuilder::new(64).build(&points).unwrap());
//!
//! // Bind an ephemeral port and serve in background threads.
//! let handle = FrontServer::new(engine.clone(), FrontConfig::default())
//!     .serve("127.0.0.1:0").unwrap();
//!
//! let queries = generate_queries(&points, 4, QueryDistribution::DataDifference, 3).unwrap();
//! let mut client = FrontClient::connect(&handle.addr().to_string()).unwrap();
//! let params = SearchParams::exact(5);
//! for query in &queries {
//!     let served = client.query("bc", query, &params, 0).unwrap().unwrap();
//!     // Bit-identical to serving the same query alone, whatever batch it rode in.
//!     let alone = engine
//!         .serve("bc", &BatchRequest::new(vec![query.clone()], params.clone()))
//!         .unwrap();
//!     assert_eq!(served.neighbors, alone.results[0].neighbors);
//! }
//! handle.shutdown();
//! ```
//!
//! See the `examples/` directory for end-to-end scenarios (SVM active learning,
//! maximum-margin style selection, index comparison, batch serving, snapshot-backed
//! cold-start serving, sharded serving, distributed fault-tolerant serving) and the
//! `p2h-bench` crate for the
//! reproduction of the paper's evaluation plus the engine throughput-scaling
//! experiment (`engine_throughput`), the snapshot load-vs-rebuild experiment
//! (`snapshot_bench`), and the shard-count sweep (`shard_bench`). Built indexes
//! persist via [`Store`]/[`Snapshot`] (`p2h-store`): save once offline, then
//! [`engine::Engine::from_store`] cold-starts a serving process with bit-identical
//! answers and no rebuild.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use p2h_balltree as balltree;
pub use p2h_bctree as bctree;
pub use p2h_core as core;
pub use p2h_data as data;
pub use p2h_engine as engine;
pub use p2h_eval as eval;
pub use p2h_front as front;
pub use p2h_hash as hash;
pub use p2h_live as live;
pub use p2h_net as net;
pub use p2h_obs as obs;
pub use p2h_shard as shard;
pub use p2h_store as store;

pub use p2h_balltree::{BallTree, BallTreeBuilder};
pub use p2h_bctree::{BcTree, BcTreeBuilder, BcTreeVariant};
pub use p2h_core::{
    distance, BranchPreference, Error, HyperplaneQuery, LinearScan, Neighbor, P2hIndex, PointSet,
    Result, Scalar, SearchParams, SearchResult, SearchStats, TopKCollector,
};
pub use p2h_core::{BufBacking, VecBuf};
pub use p2h_data::{
    generate_queries, DataDistribution, GroundTruth, QueryDistribution, SyntheticDataset,
};
pub use p2h_engine::{
    BatchExecutor, BatchRequest, BatchResponse, Engine, IndexRegistry, LatencyHistogram,
    ShardedBatchResponse, ShardedExecutor, SharedIndex,
};
pub use p2h_eval::{
    evaluate, evaluate_parallel, sweep_budgets, time_profile, MethodEvaluation, ParallelEvaluation,
    TimeProfile,
};
pub use p2h_front::{FrontClient, FrontConfig, FrontServer};
pub use p2h_hash::{FhIndex, FhParams, NhIndex, NhParams};
pub use p2h_live::{
    CompactionPolicy, CompactionReport, CompactionTrigger, Compactor, LiveError, LiveIndex,
    LiveResult,
};
pub use p2h_net::{
    BackoffPolicy, HedgeConfig, NetError, ReplicaSet, RoutedResponse, Router, RouterConfig,
    ShardServer,
};
pub use p2h_shard::{Partitioner, ShardIndexKind, ShardedIndex, ShardedIndexBuilder};
pub use p2h_store::{LoadMode, LoadedIndex, MmapRegion, ShardGroup, Snapshot, Store, StoreError};
