//! Side-by-side comparison of every index in the workspace on one synthetic data set:
//! indexing time, index size, and the query-time/recall trade-off.
//!
//! This is a miniature version of the paper's evaluation (Tables III and Figure 5) that
//! runs in well under a minute; the full reproduction lives in the `p2h-bench` crate.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example index_comparison
//! ```

use p2hnns::eval::{evaluate, markdown_table, measure_build, sweep_budgets};
use p2hnns::{
    generate_queries, BallTreeBuilder, BcTreeBuilder, DataDistribution, FhIndex, FhParams,
    GroundTruth, NhIndex, NhParams, P2hIndex, QueryDistribution, SearchParams, SyntheticDataset,
};

fn main() {
    let dataset = SyntheticDataset::new(
        "comparison",
        20_000,
        96,
        DataDistribution::Correlated { rank: 16, noise: 0.5 },
        11,
    );
    let points = dataset.generate().expect("generate data");
    let queries = generate_queries(&points, 20, QueryDistribution::DataDifference, 3)
        .expect("generate queries");
    let k = 10;
    println!(
        "data set: {} points, {} raw dimensions, {} queries, k = {k}\n",
        points.len(),
        dataset.raw_dim,
        queries.len()
    );
    let ground_truth = GroundTruth::compute(&points, &queries, k, 4);

    // --- Indexing overhead (Table III in miniature) -------------------------------
    let (ball, ball_report) =
        measure_build("Ball-Tree", || BallTreeBuilder::new(100).build(&points).unwrap());
    let (bc, bc_report) =
        measure_build("BC-Tree", || BcTreeBuilder::new(100).build(&points).unwrap());
    let (nh, nh_report) =
        measure_build("NH (λ=4d)", || NhIndex::build(&points, NhParams::new(4, 16)).unwrap());
    let (fh, fh_report) =
        measure_build("FH (λ=4d)", || FhIndex::build(&points, FhParams::new(4, 16, 4)).unwrap());

    let rows: Vec<Vec<String>> = [&ball_report, &bc_report, &nh_report, &fh_report]
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                format!("{:.3}", r.build_time_s),
                format!("{:.2}", r.index_size_mb()),
            ]
        })
        .collect();
    println!("Indexing overhead:\n");
    println!("{}", markdown_table(&["Method", "Indexing Time (s)", "Index Size (MiB)"], &rows));

    // --- Exact query cost ----------------------------------------------------------
    let indexes: [(&dyn P2hIndex, &str); 4] =
        [(&ball, "Ball-Tree"), (&bc, "BC-Tree"), (&nh, "NH"), (&fh, "FH")];
    let mut rows = Vec::new();
    for (index, label) in indexes {
        let eval = evaluate(index, label, &queries, &ground_truth, &SearchParams::exact(k));
        rows.push(vec![
            label.to_string(),
            format!("{:.1}", eval.recall_pct()),
            format!("{:.3}", eval.avg_query_time_ms),
            format!("{:.0}", eval.avg_candidates()),
        ]);
    }
    println!("Exact search (unbounded candidate budget):\n");
    println!(
        "{}",
        markdown_table(&["Method", "Recall (%)", "Query Time (ms)", "Avg Candidates"], &rows)
    );

    // --- Recall/time trade-off (Figure 5 in miniature) -----------------------------
    let budgets = [200, 500, 1_000, 2_000, 5_000, 10_000, 20_000];
    let mut rows = Vec::new();
    for (index, label) in indexes {
        for eval in sweep_budgets(index, label, &queries, &ground_truth, k, &budgets) {
            rows.push(vec![
                label.to_string(),
                eval.candidate_limit.unwrap_or(0).to_string(),
                format!("{:.1}", eval.recall_pct()),
                format!("{:.3}", eval.avg_query_time_ms),
            ]);
        }
    }
    println!("Query time vs recall across candidate budgets:\n");
    println!("{}", markdown_table(&["Method", "Budget", "Recall (%)", "Query Time (ms)"], &rows));
    println!(
        "The trees reach high recall at a fraction of the hashing methods' query time, \
         while their index structures are one to two orders of magnitude smaller — the \
         qualitative result of the paper."
    );
}
