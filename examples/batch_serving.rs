//! Batch serving with the `p2h-engine` layer: register indexes by name, serve query
//! batches in parallel, and read latency percentiles off the response.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example batch_serving
//! ```

use p2hnns::engine::{BatchRequest, Engine};
use p2hnns::{
    generate_queries, BallTreeBuilder, BcTreeBuilder, DataDistribution, LinearScan,
    QueryDistribution, SearchParams, SyntheticDataset,
};

fn main() {
    // 1. A shared synthetic data set: 50,000 points in 48 dimensions.
    let points = SyntheticDataset::new(
        "batch-serving",
        50_000,
        48,
        DataDistribution::GaussianClusters { clusters: 12, std_dev: 1.5 },
        7,
    )
    .generate()
    .expect("synthetic generation");

    // 2. Build the indexes — the trees with parallel construction — and register them
    //    under names. Registered indexes live behind `Arc`s, so any number of serving
    //    threads can search them concurrently without copies.
    let engine = Engine::new(0); // 0 = one worker per CPU
    let ball = BallTreeBuilder::new(100).build_parallel(&points, 0).expect("build Ball-Tree");
    let bc = BcTreeBuilder::new(100).build_parallel(&points, 0).expect("build BC-Tree");
    engine.registry().register("ball", ball);
    engine.registry().register("bc", bc);
    engine.registry().register("scan", LinearScan::new(points.clone()));
    println!(
        "registered indexes: {:?} ({} worker threads per batch)\n",
        engine.registry().names(),
        engine.executor().threads()
    );

    // 3. A batch of 128 hyperplane queries: mostly budgeted top-10, with two positions
    //    overridden — one exact, one with a very tight budget.
    let queries = generate_queries(&points, 128, QueryDistribution::DataDifference, 11)
        .expect("query generation");
    let request = BatchRequest::new(queries, SearchParams::approximate(10, 2_000))
        .with_override(0, SearchParams::exact(10))
        .with_override(1, SearchParams::approximate(10, 200));

    // 4. Serve the same batch from every registered index and compare.
    for name in engine.registry().names() {
        let response = engine.serve(&name, &request).expect("serve batch");
        println!(
            "{name:<5} {:>8.0} qps  {}  avg {:.0} candidates/query",
            response.throughput_qps(),
            response.latency.summary_ms(),
            response.total_stats.candidates_verified as f64 / response.results.len() as f64,
        );
    }

    // 5. The per-request overrides were honored: query 0 ran exact, query 1 with a
    //    200-candidate budget.
    let response = engine.serve("bc", &request).expect("serve batch");
    let exact = response.results[0].stats.candidates_verified;
    let tight = response.results[1].stats.candidates_verified;
    println!(
        "\noverrides: query 0 (exact) verified {exact} candidates, \
         query 1 (budget 200) verified {tight}"
    );
    assert!(tight <= 200);

    // 6. Parallel serving never changes answers: the batch result equals a direct
    //    sequential search on the same index.
    let bc = engine.registry().get("bc").expect("bc registered");
    for (i, result) in response.results.iter().enumerate() {
        let direct = bc.search(&request.queries[i], request.params_for(i));
        assert_eq!(result.neighbors, direct.neighbors);
    }
    println!("parallel batch answers verified identical to sequential search");
}
