//! Sharded serving end to end: partition a point set across several BC-Trees, serve a
//! batch through both serving paths, snapshot the whole thing as a shard group, and
//! cold-start a second engine from the directory — all with bit-identical answers.
//!
//! ```text
//! cargo run --release --example sharded_serving
//! ```

use p2hnns::engine::{BatchRequest, Engine};
use p2hnns::shard::{Partitioner, ShardIndexKind, ShardedIndexBuilder};
use p2hnns::{
    generate_queries, DataDistribution, LinearScan, P2hIndex, QueryDistribution, SearchParams,
    Store, SyntheticDataset,
};

fn main() {
    // A synthetic workload: 60k points in 32 dimensions, 64 hyperplane queries.
    let points = SyntheticDataset::new(
        "sharded-serving",
        60_000,
        32,
        DataDistribution::GaussianClusters { clusters: 12, std_dev: 1.5 },
        7,
    )
    .generate()
    .expect("synthetic data");
    let queries =
        generate_queries(&points, 64, QueryDistribution::DataDifference, 3).expect("queries");
    let request = BatchRequest::new(queries, SearchParams::exact(10));

    // Partition across 4 shards (hash-scattered) with one BC-Tree per shard.
    let sharded = ShardedIndexBuilder::new(
        Partitioner::Hash { shards: 4 },
        ShardIndexKind::BcTree { leaf_size: 100 },
    )
    .with_seed(1)
    .build(&points)
    .expect("sharded build");
    println!(
        "built {} shards over {} points ({} KiB of index structure)",
        sharded.shard_count(),
        sharded.len(),
        sharded.index_size_bytes() / 1024
    );

    // Serve through the engine. The sharded index is an ordinary `P2hIndex`, so the
    // query-parallel batch path just works; `serve_sharded` additionally fans each
    // query across the shards and reports per-shard latency.
    let engine = Engine::new(0);
    engine.registry().register_sharded("p2h", sharded);
    let batch = engine.serve("p2h", &request).expect("batch serve");
    let fanout = engine.serve_sharded("p2h", &request).expect("sharded serve");
    println!("query-parallel: {:.0} qps, {}", batch.throughput_qps(), batch.latency.summary_ms());
    println!("shard-parallel: {:.0} qps, {}", fanout.throughput_qps(), fanout.latency.summary_ms());
    for (shard, histogram) in fanout.per_shard_latency.iter().enumerate() {
        println!("  shard {shard}: {}", histogram.summary_ms());
    }

    // The merge is exact: both paths agree with the unsharded linear-scan oracle bit
    // for bit.
    let oracle = LinearScan::new(points.clone());
    for (i, (a, b)) in batch.results.iter().zip(&fanout.results).enumerate() {
        let expected = oracle.search(&request.queries[i], request.params_for(i));
        assert_eq!(a.neighbors, expected.neighbors);
        assert_eq!(b.neighbors, expected.neighbors);
    }
    println!("sharded answers are bit-identical to the unsharded oracle");

    // Persist as a shard group (atomic multi-file commit) and cold-start from disk.
    let dir = std::env::temp_dir().join(format!("p2h-sharded-serving-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let store = Store::create(&dir).expect("create store");
    engine.registry().get_sharded("p2h").unwrap().save_into(&store, "p2h").expect("snapshot");

    let cold = Engine::from_store(&dir, 0).expect("cold start");
    let reloaded = cold.serve("p2h", &request).expect("serve after reload");
    for (a, b) in batch.results.iter().zip(&reloaded.results) {
        assert_eq!(a.neighbors, b.neighbors);
    }
    println!("cold-started engine answers bit-identically from {}", dir.display());

    std::fs::remove_dir_all(&dir).ok();
}
