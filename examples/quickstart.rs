//! Quickstart: build a BC-Tree over a synthetic data set and answer hyperplane queries.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use p2hnns::{
    generate_queries, BallTreeBuilder, BcTreeBuilder, DataDistribution, LinearScan, P2hIndex,
    QueryDistribution, SearchParams, SyntheticDataset,
};

fn main() {
    // 1. Generate a synthetic data set: 20,000 points in 64 dimensions, drawn from a
    //    Gaussian mixture (the library appends the constant 1 to every point, so the
    //    indexed dimension is 65).
    let dataset = SyntheticDataset::new(
        "quickstart",
        20_000,
        64,
        DataDistribution::GaussianClusters { clusters: 12, std_dev: 1.5 },
        42,
    );
    let points = dataset.generate().expect("synthetic generation cannot fail for valid specs");
    println!("data set: {} points, {} raw dimensions", points.len(), dataset.raw_dim);

    // 2. Build the two tree indexes.
    let ball = BallTreeBuilder::new(100).build(&points).expect("build Ball-Tree");
    let bc = BcTreeBuilder::new(100).build(&points).expect("build BC-Tree");
    println!(
        "Ball-Tree: {} nodes, {:.2} MiB | BC-Tree: {} nodes, {:.2} MiB",
        ball.node_count(),
        ball.index_size_bytes() as f64 / (1024.0 * 1024.0),
        bc.node_count(),
        bc.index_size_bytes() as f64 / (1024.0 * 1024.0),
    );

    // 3. Generate hyperplane queries the same way the paper does (normal = difference of
    //    two random data points, passing through their midpoint).
    let queries = generate_queries(&points, 5, QueryDistribution::DataDifference, 7)
        .expect("query generation");

    // 4. Answer exact top-10 queries and compare against a linear scan.
    let scan = LinearScan::new(points.clone());
    for (i, query) in queries.iter().enumerate() {
        let exact = scan.search_exact(query, 10);
        let result = bc.search_exact(query, 10);
        assert_eq!(result.distances(), exact.distances(), "BC-Tree exact search is exact");
        println!(
            "query {i}: nearest point #{:<6} at P2H distance {:.4}  \
             (verified {} of {} points, pruned {} subtrees)",
            result.neighbors[0].index,
            result.neighbors[0].distance,
            result.stats.candidates_verified,
            points.len(),
            result.stats.pruned_subtrees,
        );
    }

    // 5. Approximate search: cap the number of verified candidates for faster answers.
    let query = &queries[0];
    for budget in [200, 1_000, 5_000] {
        let result = bc.search(query, &SearchParams::approximate(10, budget));
        println!(
            "budget {budget:>5}: best distance {:.4}, {} candidates verified",
            result.neighbors[0].distance, result.stats.candidates_verified
        );
    }
}
