//! Snapshot-backed serving: build indexes once, persist them to a `p2h-store`
//! directory, then cold-start an engine from that directory — no rebuilding — and
//! verify the loaded indexes answer queries identically to the originals.
//!
//! The cold start is demonstrated under **both load modes**: `LoadMode::Copy` (decode
//! every array into fresh heap) and the zero-copy `LoadMode::Mmap`, which memory-maps
//! each snapshot file and serves the index arrays directly out of the mapping —
//! near-free startup, no doubled RSS, and the page cache shares the bytes between
//! every process mapping the same store. Answers are bit-identical either way.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example snapshot_serving
//! ```

use p2hnns::engine::{BatchRequest, Engine};
use p2hnns::{
    generate_queries, BallTreeBuilder, BcTreeBuilder, DataDistribution, LinearScan, LoadMode,
    QueryDistribution, SearchParams, Store, SyntheticDataset,
};

fn main() {
    // 1. The "offline" side: a data set and the expensive index builds.
    let points = SyntheticDataset::new(
        "snapshot-serving",
        50_000,
        48,
        DataDistribution::GaussianClusters { clusters: 12, std_dev: 1.5 },
        7,
    )
    .generate()
    .expect("synthetic generation");
    let ball = BallTreeBuilder::new(100).build_parallel(&points, 0).expect("build Ball-Tree");
    let bc = BcTreeBuilder::new(100).build_parallel(&points, 0).expect("build BC-Tree");

    // 2. Snapshot everything to a store directory. Each file is a versioned,
    //    CRC32-checksummed container; the MANIFEST maps names to files.
    let dir = std::env::temp_dir().join("p2hnns-snapshot-serving");
    std::fs::remove_dir_all(&dir).ok();
    let store = Store::create(&dir).expect("create store");
    store.save("ball", &ball).expect("save Ball-Tree");
    store.save("bc", &bc).expect("save BC-Tree");
    store.save("scan", &LinearScan::new(points.clone())).expect("save Linear-Scan");
    println!("snapshotted {:?} into {}", store.names().expect("names"), dir.display());

    // 3. The "serving" side: cold-start purely from the directory. In a real system
    //    this is a different process (or machine) — nothing is rebuilt. `Mmap` maps
    //    each snapshot file and the indexes serve zero-copy out of the mappings
    //    (`Engine::from_store` picks the mode from `P2H_STORE_MMAP`; here we ask for
    //    the zero-copy path explicitly and cross-check a copying cold start too).
    let start = std::time::Instant::now();
    let engine = Engine::from_store_with(&dir, 0, LoadMode::Mmap).expect("mmap cold start");
    let mmap_start = start.elapsed();
    let start = std::time::Instant::now();
    let copying = Engine::from_store_with(&dir, 0, LoadMode::Copy).expect("copy cold start");
    let copy_start = start.elapsed();
    println!(
        "cold-started engine with indexes {:?} (mmap {mmap_start:.2?} vs copy {copy_start:.2?})\n",
        engine.registry().names()
    );

    // 4. Serve a batch from every loaded index and cross-check against the originals.
    let queries = generate_queries(&points, 64, QueryDistribution::DataDifference, 11)
        .expect("query generation");
    let request = BatchRequest::new(queries, SearchParams::exact(10));

    let reference = Engine::new(0);
    reference.registry().register("ball", ball);
    reference.registry().register("bc", bc);
    reference.registry().register("scan", LinearScan::new(points));

    for name in engine.registry().names() {
        let loaded = engine.serve(&name, &request).expect("serve from mmap-loaded index");
        let copied = copying.serve(&name, &request).expect("serve from copy-loaded index");
        let original = reference.serve(&name, &request).expect("serve from original");
        let identical = loaded
            .results
            .iter()
            .zip(&original.results)
            .zip(&copied.results)
            .all(|((a, b), c)| a.neighbors == b.neighbors && a.neighbors == c.neighbors);
        println!(
            "{name:<5} {:>8.0} qps  {}  mmap ≡ copy ≡ in-memory build: {identical}",
            loaded.throughput_qps(),
            loaded.latency.summary_ms(),
        );
        assert!(identical, "loaded index diverged from the original");
    }

    std::fs::remove_dir_all(&dir).ok();
}
