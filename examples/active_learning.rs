//! Pool-based active learning with a linear classifier (the motivating application of
//! the paper's introduction).
//!
//! A linear classifier's decision boundary is a hyperplane; the classic "uncertainty
//! sampling" strategy asks a human to label the *unlabeled points closest to that
//! hyperplane*. That selection step is exactly a P2HNNS query, so a BC-Tree over the
//! unlabeled pool turns every active-learning round into one fast index lookup instead
//! of a linear scan.
//!
//! This example compares uncertainty sampling (via BC-Tree) against random sampling on a
//! synthetic two-class problem and prints the test accuracy after each labelling round.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example active_learning
//! ```

use rand::rngs::StdRng;
use rand::{seq::SliceRandom, Rng, SeedableRng};

use p2hnns::{BcTreeBuilder, HyperplaneQuery, P2hIndex, PointSet, Scalar, SearchParams};

/// Number of raw feature dimensions.
const DIM: usize = 32;
/// Size of the unlabeled pool.
const POOL: usize = 20_000;
/// Size of the held-out test set.
const TEST: usize = 2_000;
/// Points labelled per active-learning round.
const BATCH: usize = 10;
/// Number of labelling rounds.
const ROUNDS: usize = 15;

fn main() {
    let mut rng = StdRng::seed_from_u64(2023);

    // Ground-truth concept: a random hyperplane through the origin-ish region.
    let true_weights: Vec<Scalar> = (0..DIM).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let true_bias: Scalar = rng.gen_range(-0.5..0.5);

    let (pool_points, pool_labels) = sample_problem(POOL, &true_weights, true_bias, &mut rng);
    let (test_points, test_labels) = sample_problem(TEST, &true_weights, true_bias, &mut rng);

    // Index the unlabeled pool once; every uncertainty-sampling round reuses it.
    let pool_set = PointSet::augment(&pool_points).expect("pool is non-empty");
    let index = BcTreeBuilder::new(100).build(&pool_set).expect("build BC-Tree");

    println!("pool: {POOL} points, test: {TEST} points, {BATCH} labels per round\n");
    println!("round | labelled | accuracy (uncertainty/BC-Tree) | accuracy (random)");
    println!("------|----------|--------------------------------|------------------");

    let mut active = Learner::new(DIM);
    let mut random = Learner::new(DIM);
    let mut active_labelled: Vec<usize> = Vec::new();
    let mut random_labelled: Vec<usize> = Vec::new();

    // Seed both learners with the same handful of random labels.
    let mut seed_ids: Vec<usize> = (0..POOL).collect();
    seed_ids.shuffle(&mut rng);
    for &i in seed_ids.iter().take(BATCH) {
        active_labelled.push(i);
        random_labelled.push(i);
    }
    active.fit(&pool_points, &pool_labels, &active_labelled);
    random.fit(&pool_points, &pool_labels, &random_labelled);

    for round in 1..=ROUNDS {
        // Uncertainty sampling: the current decision boundary is a hyperplane query; ask
        // the BC-Tree for the unlabeled points with the smallest margin.
        let query = HyperplaneQuery::from_normal_and_bias(&active.weights, active.bias)
            .expect("non-degenerate model");
        let want = active_labelled.len() + BATCH;
        let result = index.search(&query, &SearchParams::exact(want));
        for neighbor in result.neighbors {
            if !active_labelled.contains(&neighbor.index) {
                active_labelled.push(neighbor.index);
                if active_labelled.len() >= want {
                    break;
                }
            }
        }
        active.fit(&pool_points, &pool_labels, &active_labelled);

        // Baseline: label the same number of random points.
        for &i in seed_ids.iter().skip(round * BATCH).take(BATCH) {
            random_labelled.push(i);
        }
        random.fit(&pool_points, &pool_labels, &random_labelled);

        println!(
            "{round:>5} | {:>8} | {:>30.3} | {:>17.3}",
            active_labelled.len(),
            active.accuracy(&test_points, &test_labels),
            random.accuracy(&test_points, &test_labels),
        );
    }

    println!(
        "\nUncertainty sampling reaches high accuracy with far fewer labels because every \
         round queries the points nearest the decision hyperplane — a P2HNNS query served \
         by the BC-Tree in well under a millisecond."
    );
}

/// Draws `n` points from a Gaussian cloud and labels them by the true hyperplane, with a
/// little label noise to keep the problem honest.
fn sample_problem(
    n: usize,
    weights: &[Scalar],
    bias: Scalar,
    rng: &mut StdRng,
) -> (Vec<Vec<Scalar>>, Vec<i8>) {
    let mut points = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let x: Vec<Scalar> = (0..weights.len()).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let margin: Scalar =
            x.iter().zip(weights.iter()).map(|(a, b)| a * b).sum::<Scalar>() + bias;
        let mut label = if margin >= 0.0 { 1i8 } else { -1i8 };
        if rng.gen_bool(0.02) {
            label = -label;
        }
        points.push(x);
        labels.push(label);
    }
    (points, labels)
}

/// A tiny linear classifier trained with averaged-perceptron epochs — enough to produce
/// a meaningful decision hyperplane for the selection step.
struct Learner {
    weights: Vec<Scalar>,
    bias: Scalar,
}

impl Learner {
    fn new(dim: usize) -> Self {
        Self { weights: vec![0.0; dim], bias: 0.0 }
    }

    fn fit(&mut self, points: &[Vec<Scalar>], labels: &[i8], labelled: &[usize]) {
        self.weights.iter_mut().for_each(|w| *w = 0.0);
        self.bias = 0.0;
        if labelled.is_empty() {
            self.weights[0] = 1.0; // arbitrary non-degenerate direction
            return;
        }
        let lr = 0.1;
        for _epoch in 0..30 {
            for &i in labelled {
                let x = &points[i];
                let y = labels[i] as Scalar;
                let margin: Scalar =
                    x.iter().zip(self.weights.iter()).map(|(a, b)| a * b).sum::<Scalar>()
                        + self.bias;
                if y * margin <= 0.0 {
                    for (w, &xi) in self.weights.iter_mut().zip(x.iter()) {
                        *w += lr * y * xi;
                    }
                    self.bias += lr * y;
                }
            }
        }
        if self.weights.iter().all(|w| w.abs() < 1e-9) {
            self.weights[0] = 1.0;
        }
    }

    fn accuracy(&self, points: &[Vec<Scalar>], labels: &[i8]) -> f64 {
        let correct = points
            .iter()
            .zip(labels.iter())
            .filter(|(x, &y)| {
                let margin: Scalar =
                    x.iter().zip(self.weights.iter()).map(|(a, b)| a * b).sum::<Scalar>()
                        + self.bias;
                (margin >= 0.0) == (y >= 0)
            })
            .count();
        correct as f64 / points.len() as f64
    }
}
