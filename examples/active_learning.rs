//! Pool-based active learning with a linear classifier (the motivating application of
//! the paper's introduction) — run **end-to-end as a stream**, the way the workload
//! actually arrives, with no index rebuilds.
//!
//! A linear classifier's decision boundary is a hyperplane; the classic "uncertainty
//! sampling" strategy asks a human to label the *unlabeled points closest to that
//! hyperplane*. That selection step is exactly a P2HNNS query. The pool, though, is
//! not static: new unlabeled candidates arrive every round, and every labelled point
//! leaves the pool. This example drives that loop through the live tier
//! ([`LiveIndex`]): arrivals are **inserted** (durable before acknowledged), the
//! round's selection is one layered query against the current hyperplane, labelled
//! points are **deleted**, and every few rounds a background-style **compaction**
//! folds the memtable into a fresh Ball-Tree base — serving continues throughout,
//! bit-identical to a full rebuild at every step.
//!
//! The uncertainty sampler is compared against random sampling on the same stream;
//! test accuracy is printed after each labelling round.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example active_learning
//! ```

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use p2hnns::{HyperplaneQuery, LiveIndex, Scalar, Store};

/// Number of raw feature dimensions.
const DIM: usize = 32;
/// Unlabeled points available before the first round.
const INITIAL_POOL: usize = 5_000;
/// New unlabeled candidates arriving each round.
const ARRIVALS: usize = 1_000;
/// Size of the held-out test set.
const TEST: usize = 2_000;
/// Points labelled per active-learning round.
const BATCH: usize = 10;
/// Number of labelling rounds.
const ROUNDS: usize = 15;
/// Compact the live tier every this many rounds.
const COMPACT_EVERY: usize = 5;

fn main() {
    let mut rng = StdRng::seed_from_u64(2023);

    // Ground-truth concept: a random hyperplane through the origin-ish region.
    let true_weights: Vec<Scalar> = (0..DIM).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let true_bias: Scalar = rng.gen_range(-0.5..0.5);

    let (test_points, test_labels) = sample_problem(TEST, &true_weights, true_bias, &mut rng);

    // The streaming pool: one live index in a throwaway store. Global ids are
    // assigned in insertion order, so they double as indices into `points`/`labels`.
    let dir = std::env::temp_dir().join(format!("p2hnns-active-learning-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let store = Store::create(&dir).expect("create store");
    let pool = LiveIndex::create(&store, "pool", DIM + 1).expect("create live pool");

    let mut points: Vec<Vec<Scalar>> = Vec::new();
    let mut labels: Vec<i8> = Vec::new();
    let arrive = |n: usize,
                  pool: &LiveIndex,
                  rng: &mut StdRng,
                  points: &mut Vec<Vec<Scalar>>,
                  labels: &mut Vec<i8>| {
        let (batch, truth) = sample_problem(n, &true_weights, true_bias, rng);
        let ids = pool.insert_batch(&batch).expect("insert arrivals");
        debug_assert_eq!(ids[0] as usize, points.len());
        points.extend(batch);
        labels.extend(truth);
    };
    arrive(INITIAL_POOL, &pool, &mut rng, &mut points, &mut labels);

    println!(
        "pool: {INITIAL_POOL} points + {ARRIVALS}/round arriving, test: {TEST} points, \
         {BATCH} labels per round\n"
    );
    println!("round | labelled | pool size | accuracy (uncertainty/live) | accuracy (random)");
    println!("------|----------|-----------|-----------------------------|------------------");

    let mut active = Learner::new(DIM);
    let mut random = Learner::new(DIM);
    let mut active_labelled: Vec<usize> = Vec::new();
    let mut random_labelled: Vec<usize> = Vec::new();
    let mut random_seen: HashSet<usize> = HashSet::new();

    // Seed both learners with the same handful of random labels. The active
    // learner's labelled points leave its pool (they are no longer unlabeled).
    for _ in 0..BATCH {
        let i = rng.gen_range(0..points.len());
        if random_seen.insert(i) {
            random_labelled.push(i);
        }
        if pool.is_live(i as u32) {
            pool.delete(i as u32).expect("remove labelled point");
            active_labelled.push(i);
        }
    }
    active.fit(&points, &labels, &active_labelled);
    random.fit(&points, &labels, &random_labelled);

    for round in 1..=ROUNDS {
        // New unlabeled candidates stream in — a plain durable insert, no rebuild.
        arrive(ARRIVALS, &pool, &mut rng, &mut points, &mut labels);

        // Uncertainty sampling: the current decision boundary is a hyperplane
        // query; ask the live tier for the unlabeled points with the smallest
        // margin. Labelled points were deleted, so every hit is fresh.
        let query = HyperplaneQuery::from_normal_and_bias(&active.weights, active.bias)
            .expect("non-degenerate model");
        let result = pool.search_exact(&query, BATCH).expect("selection query");
        for neighbor in result.neighbors {
            pool.delete(neighbor.index as u32).expect("remove labelled point");
            active_labelled.push(neighbor.index);
        }
        active.fit(&points, &labels, &active_labelled);

        // Baseline: label the same number of random unlabeled points.
        while random_labelled.len() < active_labelled.len() {
            let i = rng.gen_range(0..points.len());
            if random_seen.insert(i) {
                random_labelled.push(i);
            }
        }
        random.fit(&points, &labels, &random_labelled);

        println!(
            "{round:>5} | {:>8} | {:>9} | {:>27.3} | {:>17.3}",
            active_labelled.len(),
            pool.len(),
            active.accuracy(&test_points, &test_labels),
            random.accuracy(&test_points, &test_labels),
        );

        // Periodically fold the memtable into a compacted Ball-Tree base. Queries
        // before, during, and after are bit-identical to a full rebuild.
        if round % COMPACT_EVERY == 0 {
            let report = pool.compact().expect("compact");
            println!(
                "      | (compacted to epoch {}: {} survivors, {} memtable rows folded, \
                 {:.1} ms)",
                report.epoch,
                report.survivors,
                report.folded_rows,
                report.wall_ns as f64 / 1.0e6,
            );
        }
    }

    // The pool is durable: a restart replays the WAL over the compacted base and
    // recovers the identical live set.
    let final_len = pool.len();
    drop(pool);
    let recovered = LiveIndex::open(&store, "pool").expect("reopen pool");
    assert_eq!(recovered.len(), final_len);

    println!(
        "\nUncertainty sampling reaches high accuracy with far fewer labels because every \
         round queries the points nearest the decision hyperplane — served by the live \
         tier over a streaming pool with zero index rebuilds, and every insert/delete \
         durable before it is acknowledged."
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Draws `n` points from a Gaussian cloud and labels them by the true hyperplane, with a
/// little label noise to keep the problem honest.
fn sample_problem(
    n: usize,
    weights: &[Scalar],
    bias: Scalar,
    rng: &mut StdRng,
) -> (Vec<Vec<Scalar>>, Vec<i8>) {
    let mut points = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let x: Vec<Scalar> = (0..weights.len()).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let margin: Scalar =
            x.iter().zip(weights.iter()).map(|(a, b)| a * b).sum::<Scalar>() + bias;
        let mut label = if margin >= 0.0 { 1i8 } else { -1i8 };
        if rng.gen_bool(0.02) {
            label = -label;
        }
        points.push(x);
        labels.push(label);
    }
    (points, labels)
}

/// A tiny linear classifier trained with averaged-perceptron epochs — enough to produce
/// a meaningful decision hyperplane for the selection step.
struct Learner {
    weights: Vec<Scalar>,
    bias: Scalar,
}

impl Learner {
    fn new(dim: usize) -> Self {
        Self { weights: vec![0.0; dim], bias: 0.0 }
    }

    fn fit(&mut self, points: &[Vec<Scalar>], labels: &[i8], labelled: &[usize]) {
        self.weights.iter_mut().for_each(|w| *w = 0.0);
        self.bias = 0.0;
        if labelled.is_empty() {
            self.weights[0] = 1.0; // arbitrary non-degenerate direction
            return;
        }
        let lr = 0.1;
        for _epoch in 0..30 {
            for &i in labelled {
                let x = &points[i];
                let y = labels[i] as Scalar;
                let margin: Scalar =
                    x.iter().zip(self.weights.iter()).map(|(a, b)| a * b).sum::<Scalar>()
                        + self.bias;
                if y * margin <= 0.0 {
                    for (w, &xi) in self.weights.iter_mut().zip(x.iter()) {
                        *w += lr * y * xi;
                    }
                    self.bias += lr * y;
                }
            }
        }
        if self.weights.iter().all(|w| w.abs() < 1e-9) {
            self.weights[0] = 1.0;
        }
    }

    fn accuracy(&self, points: &[Vec<Scalar>], labels: &[i8]) -> f64 {
        let correct = points
            .iter()
            .zip(labels.iter())
            .filter(|(x, &y)| {
                let margin: Scalar =
                    x.iter().zip(self.weights.iter()).map(|(a, b)| a * b).sum::<Scalar>()
                        + self.bias;
                (margin >= 0.0) == (y >= 0)
            })
            .count();
        correct as f64 / points.len() as f64
    }
}
