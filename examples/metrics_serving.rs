//! Observable serving end to end: build a sharded index, snapshot it, cold-start an
//! engine from disk, serve a batch through both serving paths, and print the live
//! metrics registry — per-index latency histograms, per-shard p99, `SearchStats`
//! counters, and the store's cold-start stage split (read vs. CRC vs. decode) — in
//! Prometheus text exposition format.
//!
//! Set `P2H_TRACE=/tmp/p2h-trace.jsonl:10` before running to additionally stream a
//! JSON-lines record (with per-stage timings) for every 10th query.
//!
//! ```text
//! cargo run --release --example metrics_serving
//! ```

use p2hnns::engine::{BatchRequest, Engine};
use p2hnns::shard::{Partitioner, ShardIndexKind, ShardedIndexBuilder};
use p2hnns::{
    generate_queries, DataDistribution, QueryDistribution, SearchParams, Store, SyntheticDataset,
};

fn main() {
    // Offline: build a sharded BC-Tree index and snapshot it as a shard group.
    let points = SyntheticDataset::new(
        "metrics-serving",
        40_000,
        24,
        DataDistribution::GaussianClusters { clusters: 8, std_dev: 1.5 },
        17,
    )
    .generate()
    .expect("synthetic data");
    let sharded = ShardedIndexBuilder::new(
        Partitioner::Hash { shards: 4 },
        ShardIndexKind::BcTree { leaf_size: 100 },
    )
    .with_seed(1)
    .build(&points)
    .expect("sharded build");

    let dir = std::env::temp_dir().join(format!("p2h-metrics-serving-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let store = Store::create(&dir).expect("create store");
    sharded.save_into(&store, "p2h").expect("snapshot shard group");
    drop(sharded);

    // Serving: cold-start from the snapshot directory (this populates the
    // `p2h_store_load_stage_ns_total` read/CRC/decode split and the engine's
    // cold-start counters), then serve one batch through each path.
    let engine = Engine::from_store(&dir, 0).expect("cold start");
    let queries =
        generate_queries(&points, 128, QueryDistribution::DataDifference, 3).expect("queries");
    let request = BatchRequest::new(queries, SearchParams::exact(10));

    let batch = engine.serve("p2h", &request).expect("batch serve");
    let fanout = engine.serve_sharded("p2h", &request).expect("sharded serve");
    println!("query-parallel: {:.0} qps, {}", batch.throughput_qps(), batch.latency.summary_ms());
    println!("shard-parallel: {:.0} qps, {}", fanout.throughput_qps(), fanout.latency.summary_ms());

    // Per-shard tail latency, read back from the metrics registry rather than the
    // response: this is what a dashboard scraping the exposition endpoint would see.
    let snapshot = engine.metrics_snapshot();
    for shard in 0..4 {
        let shard_label = shard.to_string();
        let series = snapshot
            .series("p2h_shard_latency_ns", &[("index", "p2h"), ("shard", &shard_label)])
            .expect("per-shard latency series");
        let hist = series.value.histogram().expect("histogram series");
        println!(
            "  shard {shard}: count={} p99≤{} ns (log-bucket upper bound)",
            hist.count(),
            hist.quantile(0.99)
        );
    }

    // The full scrape, exactly as a Prometheus endpoint would serve it.
    println!("\n# --- metrics exposition ---\n{}", engine.render_metrics());

    std::fs::remove_dir_all(&dir).ok();
}
