//! Maximum-margin hyperplane selection (the clustering motivation of the paper).
//!
//! Maximum margin clustering looks for the hyperplane that separates the data with the
//! widest margin, i.e. the hyperplane *maximizing its minimum point-to-hyperplane
//! distance*. Evaluating a candidate hyperplane therefore requires one P2HNNS query
//! (k = 1): the distance of the nearest point *is* the margin. This example scores a
//! pool of candidate hyperplanes with a BC-Tree and reports the widest-margin one,
//! comparing against an exhaustive scan for correctness and speed.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example margin_clustering
//! ```

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use p2hnns::{
    BcTreeBuilder, DataDistribution, HyperplaneQuery, LinearScan, P2hIndex, Scalar,
    SyntheticDataset,
};

/// Number of candidate hyperplanes to score.
const CANDIDATES: usize = 200;

fn main() {
    // Two well-separated Gaussian clusters: the best separating hyperplane should pass
    // through the gap between them, far from every point.
    let dataset = SyntheticDataset::new(
        "margin-clustering",
        30_000,
        48,
        DataDistribution::GaussianClusters { clusters: 2, std_dev: 1.0 },
        7,
    );
    let points = dataset.generate().expect("generate clusters");
    println!("data set: {} points in {} dimensions", points.len(), dataset.raw_dim);

    let build_start = Instant::now();
    let index = BcTreeBuilder::new(100).build(&points).expect("build BC-Tree");
    println!("BC-Tree built in {:.3} s\n", build_start.elapsed().as_secs_f64());

    // Candidate hyperplanes: random pairs of points define a direction; the hyperplane
    // is the perpendicular bisector of the pair (the classic candidate set for
    // stochastic maximum-margin search).
    let mut rng = StdRng::seed_from_u64(99);
    let candidates: Vec<HyperplaneQuery> = (0..CANDIDATES)
        .map(|_| loop {
            let a = points.point(rng.gen_range(0..points.len()));
            let b = points.point(rng.gen_range(0..points.len()));
            let raw_dim = points.dim() - 1;
            let normal: Vec<Scalar> = (0..raw_dim).map(|j| a[j] - b[j]).collect();
            let bias: Scalar =
                -(0..raw_dim).map(|j| normal[j] * 0.5 * (a[j] + b[j])).sum::<Scalar>();
            if let Ok(q) = HyperplaneQuery::from_normal_and_bias(&normal, bias) {
                break q;
            }
        })
        .collect();

    // Score every candidate with the BC-Tree: margin = distance of the nearest point.
    let tree_start = Instant::now();
    let mut best_tree: Option<(usize, Scalar)> = None;
    for (i, query) in candidates.iter().enumerate() {
        let margin = index.search_exact(query, 1).neighbors[0].distance;
        if best_tree.is_none_or(|(_, best)| margin > best) {
            best_tree = Some((i, margin));
        }
    }
    let tree_time = tree_start.elapsed();
    let (best_idx, best_margin) = best_tree.expect("at least one candidate");

    // Same computation with an exhaustive scan, for validation and timing comparison.
    let scan = LinearScan::new(points.clone());
    let scan_start = Instant::now();
    let mut best_scan: Option<(usize, Scalar)> = None;
    for (i, query) in candidates.iter().enumerate() {
        let margin = scan.search_exact(query, 1).neighbors[0].distance;
        if best_scan.is_none_or(|(_, best)| margin > best) {
            best_scan = Some((i, margin));
        }
    }
    let scan_time = scan_start.elapsed();
    let (scan_idx, scan_margin) = best_scan.expect("at least one candidate");

    assert_eq!(best_idx, scan_idx, "BC-Tree and linear scan must agree on the winner");
    assert!((best_margin - scan_margin).abs() < 1e-4);

    println!("scored {CANDIDATES} candidate hyperplanes (exact k=1 P2HNNS each):");
    println!(
        "  BC-Tree     : {:>8.3} s total, {:.3} ms per hyperplane",
        tree_time.as_secs_f64(),
        tree_time.as_secs_f64() * 1e3 / CANDIDATES as f64
    );
    println!(
        "  Linear scan : {:>8.3} s total, {:.3} ms per hyperplane",
        scan_time.as_secs_f64(),
        scan_time.as_secs_f64() * 1e3 / CANDIDATES as f64
    );
    println!("  speedup     : {:.1}×", scan_time.as_secs_f64() / tree_time.as_secs_f64().max(1e-9));
    println!(
        "\nwidest-margin hyperplane: candidate #{best_idx} with margin {best_margin:.4} \
         (both methods agree)"
    );
}
