//! The serving front-end end to end: snapshot a sharded index, cold-start a
//! `FrontServer` from the store, hammer it with concurrent pipelined clients so
//! queries coalesce into engine batches, shed overload with typed errors, reload
//! the engine under live traffic with zero failed requests — and verify every
//! answer stays bit-identical to serving the same query alone.
//!
//! ```text
//! cargo run --release --example frontend_serving
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use p2hnns::engine::{BatchRequest, Engine};
use p2hnns::front::{FrontClient, FrontConfig, FrontServer};
use p2hnns::shard::{Partitioner, ShardIndexKind, ShardedIndexBuilder};
use p2hnns::{
    generate_queries, DataDistribution, QueryDistribution, SearchParams, Store, SyntheticDataset,
};

fn main() {
    // A synthetic workload: 15k points in 16 dimensions, 24 hyperplane queries.
    let points = SyntheticDataset::new(
        "frontend-serving",
        15_000,
        16,
        DataDistribution::GaussianClusters { clusters: 6, std_dev: 1.4 },
        21,
    )
    .generate()
    .expect("synthetic data");
    let queries =
        generate_queries(&points, 24, QueryDistribution::DataDifference, 22).expect("queries");
    let params = SearchParams::exact(10);

    // Offline: build a sharded BC-Tree index and snapshot it. The front-end will
    // cold-start from this directory — and re-cold-start on every reload.
    let dir = std::env::temp_dir().join("p2hnns-frontend-serving");
    std::fs::remove_dir_all(&dir).ok();
    let store = Store::create(&dir).expect("create store");
    ShardedIndexBuilder::new(
        Partitioner::Hash { shards: 4 },
        ShardIndexKind::BcTree { leaf_size: 64 },
    )
    .build(&points)
    .expect("sharded build")
    .save_into(&store, "p2h")
    .expect("save");

    // The bit-identity oracle: the same engine kind, serving each query ALONE.
    let oracle_engine = Engine::from_store(&dir, 0).expect("oracle cold start");
    let oracle: Vec<_> = queries
        .iter()
        .map(|query| {
            oracle_engine
                .serve("p2h", &BatchRequest::new(vec![query.clone()], params.clone()))
                .expect("oracle serve")
                .results
                .remove(0)
        })
        .collect();

    // Serving: cold-start the front-end. Coalescing is the default policy — up to
    // 32 queries or 500µs of waiting per batch, whichever comes first.
    let config = FrontConfig::default();
    let handle = FrontServer::from_store(&dir, config)
        .expect("cold start")
        .serve("127.0.0.1:0")
        .expect("bind");
    println!("front-end serving at {}", handle.addr());

    // Four concurrent clients pipeline waves of queries while the main thread
    // reloads the engine twice. Every reply is checked bit-for-bit; a reload that
    // dropped or corrupted a single request would panic a worker.
    let addr = handle.addr().to_string();
    let served = AtomicU64::new(0);
    let wall = Instant::now();
    std::thread::scope(|scope| {
        for worker in 0..4usize {
            let (addr, queries, oracle, served) = (&addr, &queries, &oracle, &served);
            let params = params.clone();
            scope.spawn(move || {
                let mut client = FrontClient::connect(addr).expect("connect");
                let wave: Vec<_> = queries.iter().map(|q| (q.clone(), params.clone())).collect();
                for _ in 0..40 {
                    let outcomes = client.query_many("p2h", &wave, 0).expect("wave");
                    for (position, outcome) in outcomes.into_iter().enumerate() {
                        let got = outcome.unwrap_or_else(|(code, message)| {
                            panic!("worker {worker} q{position}: {code}: {message}")
                        });
                        assert_eq!(
                            got.neighbors, oracle[position].neighbors,
                            "worker {worker} q{position}: drift from serving alone"
                        );
                        served.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }

        let mut admin = FrontClient::connect(&addr).expect("admin connect");
        for round in 0..2 {
            std::thread::sleep(Duration::from_millis(60));
            let entries = admin.reload().expect("reload");
            println!("reload {round}: fresh engine serving ({entries} entries), zero drops");
        }
    });
    let total = served.load(Ordering::Relaxed);
    println!(
        "{total} queries served bit-identically under coalescing + 2 reloads \
         ({:.0} q/s)",
        total as f64 / wall.elapsed().as_secs_f64().max(1e-9)
    );

    // The metrics endpoint rides the same socket: batch sizes, queue waits, shed
    // counts, dispatch paths — Prometheus text, scrape-ready.
    let mut admin = FrontClient::connect(&addr).expect("connect");
    let metrics = admin.metrics().expect("metrics");
    for family in ["p2h_front_requests_total", "p2h_front_batches_total", "p2h_front_reloads_total"]
    {
        let line = metrics.lines().find(|l| l.starts_with(family)).unwrap_or("(missing)");
        println!("  {line}");
    }

    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
