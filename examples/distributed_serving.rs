//! Distributed fault-tolerant serving end to end: snapshot a sharded index, serve it
//! from two in-process replica servers over real TCP sockets, route batches through
//! the replicated router (retries + hedging), inject deterministic faults into the
//! client's receive path — and verify every answer stays bit-identical to serving the
//! same index locally.
//!
//! ```text
//! cargo run --release --example distributed_serving
//! ```

use std::time::Duration;

use p2hnns::engine::{BatchRequest, Engine};
use p2hnns::obs::fault;
use p2hnns::shard::{Partitioner, ShardIndexKind, ShardedIndexBuilder};
use p2hnns::{
    generate_queries, BackoffPolicy, DataDistribution, HedgeConfig, QueryDistribution, ReplicaSet,
    Router, RouterConfig, SearchParams, ShardServer, Store, SyntheticDataset,
};

const SHARDS: usize = 3;

fn main() {
    // A synthetic workload: 20k points in 16 dimensions, 32 hyperplane queries.
    let points = SyntheticDataset::new(
        "distributed-serving",
        20_000,
        16,
        DataDistribution::GaussianClusters { clusters: 8, std_dev: 1.5 },
        11,
    )
    .generate()
    .expect("synthetic data");
    let queries =
        generate_queries(&points, 32, QueryDistribution::DataDifference, 12).expect("queries");
    let request = BatchRequest::new(queries, SearchParams::exact(10))
        .with_override(0, SearchParams::approximate(10, 400));

    // Offline: build the sharded index once and snapshot it. Replicas are just
    // processes serving the same immutable snapshot — they agree by construction.
    let dir = std::env::temp_dir().join(format!("p2h-distributed-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let store = Store::create(&dir).expect("create store");
    ShardedIndexBuilder::new(
        Partitioner::Hash { shards: SHARDS },
        ShardIndexKind::BcTree { leaf_size: 100 },
    )
    .with_seed(1)
    .build(&points)
    .expect("sharded build")
    .save_into(&store, "p2h")
    .expect("snapshot");

    // Two replica servers cold-start from the store and bind ephemeral ports. In a
    // real deployment these are separate `shard-server` processes on separate hosts;
    // in-process handles keep the example self-contained (the kill -9 variant lives
    // in `crates/net/tests/kill_restart.rs` and `net_bench --check`).
    let replica_a =
        ShardServer::load(&store, "p2h").expect("load").serve("127.0.0.1:0").expect("serve");
    let replica_b =
        ShardServer::load(&store, "p2h").expect("load").serve("127.0.0.1:0").expect("serve");
    println!("replicas listening on {} and {}", replica_a.addr(), replica_b.addr());

    // Every shard can be answered by either replica. Hedging races a second replica
    // whenever an attempt exceeds the shard's observed p99 (floored at 20ms).
    let replicas: Vec<ReplicaSet> = (0..SHARDS)
        .map(|_| ReplicaSet::new([replica_a.addr().to_string(), replica_b.addr().to_string()]))
        .collect();
    let mut config = RouterConfig::new("p2h", replicas);
    config.max_retries = 12;
    config.deadline = Duration::from_secs(10);
    config.backoff = BackoffPolicy {
        base: Duration::from_millis(2),
        cap: Duration::from_millis(50),
        jitter: Duration::from_millis(1),
        seed: 11,
    };
    config.hedge = Some(HedgeConfig { floor: Duration::from_millis(20) });
    let router = Router::new(config).expect("router");

    // The local oracle: the same snapshot served in-process.
    let engine = Engine::from_store(&dir, 0).expect("cold start");
    let local = engine.serve("p2h", &request).expect("local serve");

    // Route the batch over TCP. Same request API, bit-identical answers.
    let remote = engine.serve_remote("p2h", &router, &request).expect("routed serve");
    assert!(remote.is_complete());
    assert_bit_identical(&local.results, &remote.batch.results, "healthy");
    println!(
        "routed {} queries in {:.2}ms — bit-identical to local serving",
        remote.batch.results.len(),
        remote.batch.wall_time_ns as f64 / 1.0e6
    );

    // Chaos: deterministically drop 30% of the client's receive calls. The system's
    // contract under faults is binary — a round either survives its retries with
    // answers that do not move a bit, or fails with a *typed* error. Never a panic,
    // never a hang, never silently wrong bits.
    fault::set_spec("client.recv:disconnect:0.3:7").expect("fault spec");
    let mut survived = 0usize;
    for round in 0..8 {
        match engine.serve_remote("p2h", &router, &request) {
            Ok(routed) => {
                assert!(routed.is_complete());
                assert_bit_identical(&local.results, &routed.batch.results, "chaos round");
                survived += 1;
            }
            Err(err) => {
                assert!(err.is_retryable(), "only transport errors may surface: {err}");
                println!("round {round}: retries exhausted with a typed error: {err}");
            }
        }
    }
    fault::set_rules(Vec::new());
    assert!(survived > 0, "every chaos round failed — retry budget far too small");

    // Tail latency: make half the server replies 60ms slow. The router's hedge
    // policy (delay = max(20ms floor, observed p99)) races the other replica and
    // takes whichever answers first — same snapshot, same bits, lower tail.
    fault::set_spec("server.send:slow(60):0.5:3").expect("fault spec");
    for _ in 0..3 {
        let routed = engine.serve_remote("p2h", &router, &request).expect("hedged serve");
        assert!(routed.is_complete());
        assert_bit_identical(&local.results, &routed.batch.results, "hedged round");
    }
    fault::set_rules(Vec::new());

    // The metrics registry is the chaos run's ground truth.
    let snapshot = p2hnns::obs::global().snapshot();
    for family in ["p2h_faults_injected_total", "p2h_net_retries_total", "p2h_net_hedges_total"] {
        let total: u64 = snapshot
            .families
            .iter()
            .filter(|f| f.name == family)
            .flat_map(|f| &f.series)
            .map(|s| s.value.scalar())
            .sum();
        println!("{family} = {total}");
    }
    println!(
        "{survived}/8 chaos rounds served bit-identically under 30% receive-path disconnects \
         (the rest failed with typed errors)"
    );

    drop(router);
    replica_a.shutdown();
    replica_b.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

fn assert_bit_identical(
    local: &[p2hnns::SearchResult],
    routed: &[p2hnns::SearchResult],
    context: &str,
) {
    assert_eq!(local.len(), routed.len(), "{context}: batch size");
    for (position, (l, r)) in local.iter().zip(routed).enumerate() {
        assert_eq!(l.neighbors.len(), r.neighbors.len(), "{context}: query {position}");
        for (rank, (ln, rn)) in l.neighbors.iter().zip(&r.neighbors).enumerate() {
            assert_eq!(
                (ln.index, ln.distance.to_bits()),
                (rn.index, rn.distance.to_bits()),
                "{context}: query {position} rank {rank}"
            );
        }
    }
}
