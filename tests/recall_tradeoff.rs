//! Integration tests of the approximate-search behaviour that the paper's evaluation
//! relies on: candidate budgets trade recall for time, BC-Tree's point-level pruning
//! verifies fewer candidates than Ball-Tree, and index sizes order the way Table III
//! reports.

use p2hnns::eval::{evaluate, sweep_budgets};
use p2hnns::{
    generate_queries, BallTreeBuilder, BcTreeBuilder, DataDistribution, FhIndex, FhParams,
    GroundTruth, NhIndex, NhParams, P2hIndex, PointSet, QueryDistribution, SearchParams,
    SyntheticDataset,
};

fn setup(n: usize, dim: usize) -> (PointSet, Vec<p2hnns::HyperplaneQuery>, GroundTruth) {
    let points = SyntheticDataset::new(
        "tradeoff",
        n,
        dim,
        DataDistribution::GaussianClusters { clusters: 8, std_dev: 1.5 },
        71,
    )
    .generate()
    .unwrap();
    let queries = generate_queries(&points, 15, QueryDistribution::DataDifference, 13).unwrap();
    let gt = GroundTruth::compute(&points, &queries, 10, 4);
    (points, queries, gt)
}

#[test]
fn recall_is_monotone_in_candidate_budget_for_all_indexes() {
    let (points, queries, gt) = setup(6_000, 16);
    let budgets = [100, 600, 3_000, 6_000];
    let ball = BallTreeBuilder::new(100).build(&points).unwrap();
    let bc = BcTreeBuilder::new(100).build(&points).unwrap();
    let nh = NhIndex::build(&points, NhParams::new(2, 16)).unwrap();
    let fh = FhIndex::build(&points, FhParams::new(2, 16, 4)).unwrap();
    let indexes: [(&dyn P2hIndex, &str); 4] =
        [(&ball, "Ball-Tree"), (&bc, "BC-Tree"), (&nh, "NH"), (&fh, "FH")];
    for (index, label) in indexes {
        let evals = sweep_budgets(index, label, &queries, &gt, 10, &budgets);
        for pair in evals.windows(2) {
            assert!(
                pair[1].mean_recall + 1e-9 >= pair[0].mean_recall,
                "{label}: recall decreased with a larger budget"
            );
        }
        let last = evals.last().unwrap();
        assert!(
            (last.mean_recall - 1.0).abs() < 1e-9,
            "{label}: a budget equal to n must be exact, got {}",
            last.mean_recall
        );
    }
}

#[test]
fn trees_recall_grows_steeply_toward_exactness() {
    // The paper's approximation knob is the candidate fraction: the depth-first
    // branch-and-bound visits promising leaves first, so recall should grow with the
    // budget and reach 1.0 well before the budget covers the entire data set (pruning
    // makes the exact search itself verify only a fraction of the points).
    let (points, queries, gt) = setup(12_000, 24);
    let bc = BcTreeBuilder::new(100).build(&points).unwrap();
    let half = evaluate(&bc, "BC-Tree", &queries, &gt, &SearchParams::approximate(10, 6_000));
    let exact = evaluate(&bc, "BC-Tree", &queries, &gt, &SearchParams::exact(10));
    assert!(
        half.mean_recall > 0.5,
        "half the data as budget should recover most neighbors, got {}",
        half.mean_recall
    );
    assert!((exact.mean_recall - 1.0).abs() < 1e-9);
    assert!(
        exact.total_stats.candidates_verified < 12_000 * queries.len() as u64,
        "exact search must prune at least part of the data"
    );
}

#[test]
fn bc_tree_verifies_no_more_candidates_than_ball_tree_when_exact() {
    let (points, queries, gt) = setup(10_000, 16);
    let ball = BallTreeBuilder::new(100).with_seed(3).build(&points).unwrap();
    let bc = BcTreeBuilder::new(100).with_seed(3).build(&points).unwrap();
    let ball_eval = evaluate(&ball, "Ball-Tree", &queries, &gt, &SearchParams::exact(10));
    let bc_eval = evaluate(&bc, "BC-Tree", &queries, &gt, &SearchParams::exact(10));
    assert!((ball_eval.mean_recall - 1.0).abs() < 1e-9);
    assert!((bc_eval.mean_recall - 1.0).abs() < 1e-9);
    assert!(
        bc_eval.total_stats.candidates_verified <= ball_eval.total_stats.candidates_verified,
        "BC-Tree point-level pruning must not verify more candidates: bc={}, ball={}",
        bc_eval.total_stats.candidates_verified,
        ball_eval.total_stats.candidates_verified
    );
    // Its O(d) inner-product count must also be lower (collaborative computing).
    assert!(
        bc_eval.total_stats.inner_products < ball_eval.total_stats.inner_products,
        "BC-Tree should spend fewer inner products overall"
    );
}

#[test]
fn index_sizes_order_as_in_table_3() {
    let (points, _, _) = setup(8_000, 32);
    let ball = BallTreeBuilder::new(100).build(&points).unwrap();
    let bc = BcTreeBuilder::new(100).build(&points).unwrap();
    let nh = NhIndex::build(&points, NhParams::new(2, 32)).unwrap();
    let fh = FhIndex::build(&points, FhParams::new(2, 32, 4)).unwrap();
    let (ball_size, bc_size) = (ball.index_size_bytes(), bc.index_size_bytes());
    let (nh_size, fh_size) = (nh.index_size_bytes(), fh.index_size_bytes());
    // BC-Tree is slightly larger than Ball-Tree (Θ(n) extra), both are far smaller than
    // the hashing indexes (m tables of n entries each).
    assert!(bc_size > ball_size);
    assert!((bc_size as f64) < 3.0 * ball_size as f64);
    assert!(nh_size > 3 * bc_size, "NH tables should dwarf the trees: {nh_size} vs {bc_size}");
    assert!(fh_size > 3 * bc_size, "FH tables should dwarf the trees: {fh_size} vs {bc_size}");
    // And all indexes are far smaller than quadratic in n.
    let data_bytes = points.size_bytes();
    assert!(ball_size < data_bytes);
    assert!(bc_size < data_bytes);
}

#[test]
fn per_query_stats_are_populated_consistently() {
    let (points, queries, gt) = setup(3_000, 8);
    let bc = BcTreeBuilder::new(64).build(&points).unwrap();
    let eval = evaluate(&bc, "BC-Tree", &queries, &gt, &SearchParams::approximate(10, 500));
    assert_eq!(eval.per_query.len(), queries.len());
    for q in &eval.per_query {
        assert!(q.stats.candidates_verified <= 500);
        assert!(q.stats.nodes_visited >= 1);
        assert!(q.stats.inner_products >= q.stats.candidates_verified);
        assert!(q.time_ns > 0);
        assert!((0.0..=1.0).contains(&q.recall));
    }
}
