//! End-to-end pipeline tests: catalog entry → data generation → query generation →
//! ground truth → index construction → evaluation → report emission. This is the same
//! path the benchmark binaries take, exercised at a miniature scale.

use p2hnns::eval::{
    budget_for_recall, evaluate, markdown_table, measure_build, sweep_budgets, time_profile,
    write_csv, Curve,
};
use p2hnns::{
    generate_queries, BallTreeBuilder, BcTreeBuilder, DataDistribution, GroundTruth, NhIndex,
    NhParams, P2hIndex, QueryDistribution, SearchParams, SyntheticDataset,
};

#[test]
fn full_pipeline_from_catalog_to_report() {
    // 1. Take a catalog entry (scaled down further for test speed).
    let mut entry = p2hnns::data::paper_catalog(0.05)
        .into_iter()
        .find(|e| e.dataset.name == "Sift")
        .expect("Sift is in the catalog");
    entry.dataset.n = 4_000;
    assert_eq!(entry.paper_dim, 128);

    // 2. Generate data, queries, ground truth.
    let points = entry.dataset.generate().unwrap();
    assert_eq!(points.dim(), 129);
    let queries = generate_queries(&points, 10, QueryDistribution::DataDifference, 1).unwrap();
    let gt = GroundTruth::compute(&points, &queries, 10, 4);

    // 3. Build two indexes, measuring indexing overhead.
    let (ball, ball_report) =
        measure_build("Ball-Tree", || BallTreeBuilder::new(100).build(&points).unwrap());
    let (bc, bc_report) =
        measure_build("BC-Tree", || BcTreeBuilder::new(100).build(&points).unwrap());
    assert!(ball_report.build_time_s > 0.0);
    assert!(bc_report.index_size_bytes > ball_report.index_size_bytes);

    // 4. Sweep candidate budgets into a recall/time curve.
    let budgets = [200, 1_000, 4_000];
    let mut curve = Curve::new("BC-Tree");
    for eval in sweep_budgets(&bc, "BC-Tree", &queries, &gt, 10, &budgets) {
        curve.push(eval.recall_pct(), eval.avg_query_time_ms, eval.candidate_limit.unwrap());
    }
    assert_eq!(curve.points.len(), budgets.len());
    assert!(curve.time_at_recall(99.0).is_some(), "full budget reaches 100% recall");

    // 5. Find the budget achieving ~80% recall and profile the query time there.
    let at80 = budget_for_recall(&bc, "BC-Tree", &queries, &gt, 10, 0.8, &budgets).unwrap();
    assert!(at80.mean_recall >= 0.8);
    let profile = time_profile(&bc, &queries, 10, at80.candidate_limit);
    assert!(profile.total_ms() > 0.0);
    assert!(profile.bounds_ms > 0.0, "a tree spends time on lower bounds");

    // 6. Exact evaluation of both trees agrees at 100% recall, and the Ball-Tree does
    //    not verify fewer candidates than the BC-Tree.
    let ball_eval = evaluate(&ball, "Ball-Tree", &queries, &gt, &SearchParams::exact(10));
    let bc_eval = evaluate(&bc, "BC-Tree", &queries, &gt, &SearchParams::exact(10));
    assert!((ball_eval.mean_recall - 1.0).abs() < 1e-9);
    assert!((bc_eval.mean_recall - 1.0).abs() < 1e-9);
    assert!(bc_eval.total_stats.candidates_verified <= ball_eval.total_stats.candidates_verified);

    // 7. Emit the reports (CSV + Markdown) like the bench binaries do.
    let rows: Vec<Vec<String>> = curve
        .points
        .iter()
        .map(|p| {
            vec![p.budget.to_string(), format!("{:.2}", p.recall_pct), format!("{:.4}", p.time_ms)]
        })
        .collect();
    let table = markdown_table(&["budget", "recall_pct", "time_ms"], &rows);
    assert!(table.contains("budget"));
    let mut path = std::env::temp_dir();
    path.push(format!("p2h-e2e-{}.csv", std::process::id()));
    write_csv(&path, &["budget", "recall_pct", "time_ms"], &rows).unwrap();
    let written = std::fs::read_to_string(&path).unwrap();
    assert_eq!(written.lines().count(), rows.len() + 1);
    std::fs::remove_file(&path).ok();
}

#[test]
fn facade_reexports_are_usable_together() {
    // Compile-time + runtime check that the facade exposes a coherent API surface.
    let points =
        SyntheticDataset::new("facade", 600, 6, DataDistribution::Uniform { scale: 3.0 }, 3)
            .generate()
            .unwrap();
    let queries = generate_queries(&points, 3, QueryDistribution::RandomNormal, 4).unwrap();
    let gt = GroundTruth::compute(&points, &queries, 5, 2);

    let nh = NhIndex::build(&points, NhParams::new(1, 4)).unwrap();
    let eval = evaluate(&nh, "NH", &queries, &gt, &SearchParams::exact(5));
    assert!((eval.mean_recall - 1.0).abs() < 1e-9, "unbounded NH is exact");
    assert_eq!(nh.name(), "NH");

    let bc = BcTreeBuilder::new(64).build(&points).unwrap();
    let result = bc.search_exact(&queries[0], 5);
    assert_eq!(result.neighbors.len(), 5);
}

#[test]
fn large_scale_catalog_entries_generate_consistently() {
    // The Figure-9 stand-ins: generate miniature versions and check basic statistics.
    for mut entry in p2hnns::data::large_scale_catalog(0.002) {
        entry.dataset.n = entry.dataset.n.min(5_000);
        let points = entry.dataset.generate().unwrap();
        assert_eq!(points.dim(), entry.paper_dim + 1);
        assert!(points.len() >= 2_000);
        let bc = BcTreeBuilder::new(200).build(&points).unwrap();
        bc.check_invariants().unwrap();
    }
}
