//! Cross-crate integration tests: every index must return the exact answer (identical to
//! the linear-scan oracle) when run without a candidate budget, across data
//! distributions, dimensions, and values of k.

use p2hnns::{
    generate_queries, BallTreeBuilder, BcTreeBuilder, BcTreeVariant, DataDistribution, FhIndex,
    FhParams, LinearScan, NhIndex, NhParams, P2hIndex, PointSet, QueryDistribution, SearchParams,
    SyntheticDataset,
};

fn dataset(distribution: DataDistribution, n: usize, dim: usize, seed: u64) -> PointSet {
    SyntheticDataset::new("integration", n, dim, distribution, seed).generate().unwrap()
}

fn all_distributions() -> Vec<DataDistribution> {
    vec![
        DataDistribution::GaussianClusters { clusters: 4, std_dev: 1.0 },
        DataDistribution::Correlated { rank: 3, noise: 0.3 },
        DataDistribution::Uniform { scale: 5.0 },
        DataDistribution::HeavyTailedNorms { mu: 0.5, sigma: 0.8 },
    ]
}

#[test]
fn trees_are_exact_on_every_distribution() {
    for (d_idx, distribution) in all_distributions().into_iter().enumerate() {
        let points = dataset(distribution, 1_500, 10, 100 + d_idx as u64);
        let queries = generate_queries(&points, 6, QueryDistribution::DataDifference, 5).unwrap();
        let scan = LinearScan::new(points.clone());
        let ball = BallTreeBuilder::new(50).build(&points).unwrap();
        let bc = BcTreeBuilder::new(50).build(&points).unwrap();
        for (qi, q) in queries.iter().enumerate() {
            for k in [1, 7, 25] {
                let exact = scan.search_exact(q, k);
                assert_eq!(
                    ball.search_exact(q, k).distances(),
                    exact.distances(),
                    "Ball-Tree mismatch: distribution {d_idx}, query {qi}, k={k}"
                );
                assert_eq!(
                    bc.search_exact(q, k).distances(),
                    exact.distances(),
                    "BC-Tree mismatch: distribution {d_idx}, query {qi}, k={k}"
                );
            }
        }
    }
}

#[test]
fn hashing_baselines_are_exact_with_unlimited_budget() {
    let points =
        dataset(DataDistribution::GaussianClusters { clusters: 3, std_dev: 1.5 }, 900, 8, 7);
    let queries = generate_queries(&points, 4, QueryDistribution::DataDifference, 9).unwrap();
    let scan = LinearScan::new(points.clone());
    let nh = NhIndex::build(&points, NhParams::new(2, 8)).unwrap();
    let fh = FhIndex::build(&points, FhParams::new(2, 8, 3)).unwrap();
    for q in &queries {
        let exact = scan.search_exact(q, 10);
        assert_eq!(nh.search_exact(q, 10).distances(), exact.distances(), "NH");
        assert_eq!(fh.search_exact(q, 10).distances(), exact.distances(), "FH");
    }
}

#[test]
fn bc_tree_variants_agree_on_exact_results() {
    let points = dataset(DataDistribution::Correlated { rank: 4, noise: 0.2 }, 2_000, 12, 17);
    let queries = generate_queries(&points, 5, QueryDistribution::RandomNormal, 21).unwrap();
    let bc = BcTreeBuilder::new(80).build(&points).unwrap();
    for q in &queries {
        let reference = bc.search_variant(q, &SearchParams::exact(15), BcTreeVariant::Full);
        for variant in
            [BcTreeVariant::WithoutCone, BcTreeVariant::WithoutBall, BcTreeVariant::WithoutBoth]
        {
            let got = bc.search_variant(q, &SearchParams::exact(15), variant);
            assert_eq!(got.distances(), reference.distances(), "variant {variant:?}");
        }
    }
}

#[test]
fn different_leaf_sizes_do_not_change_exact_answers() {
    let points =
        dataset(DataDistribution::GaussianClusters { clusters: 5, std_dev: 2.0 }, 3_000, 16, 23);
    let queries = generate_queries(&points, 4, QueryDistribution::DataDifference, 31).unwrap();
    let scan = LinearScan::new(points.clone());
    for leaf_size in [10, 100, 1_000, 5_000] {
        let bc = BcTreeBuilder::new(leaf_size).build(&points).unwrap();
        for q in &queries {
            assert_eq!(
                bc.search_exact(q, 10).distances(),
                scan.search_exact(q, 10).distances(),
                "leaf size {leaf_size}"
            );
        }
    }
}

#[test]
fn raw_queries_and_augmented_points_are_consistent() {
    // End-to-end sanity of the dimension conventions: the distance reported by the index
    // for the winning point matches the raw point-to-hyperplane formula (Equation 1).
    let raw_rows: Vec<Vec<f32>> = (0..500)
        .map(|i| vec![(i % 23) as f32 * 0.3, (i % 7) as f32 - 3.0, i as f32 * 0.01])
        .collect();
    let points = PointSet::augment(&raw_rows).unwrap();
    let bc = BcTreeBuilder::new(32).build(&points).unwrap();
    let query = p2hnns::HyperplaneQuery::from_normal_and_bias(&[0.5, -1.0, 2.0], 0.7).unwrap();
    let result = bc.search_exact(&query, 1);
    let winner = result.neighbors[0];
    let direct = query.p2h_distance_raw(&raw_rows[winner.index]);
    assert!((winner.distance - direct).abs() < 1e-4);
    // And no other point is closer.
    for row in &raw_rows {
        assert!(query.p2h_distance_raw(row) + 1e-5 >= winner.distance);
    }
}
