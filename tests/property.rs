//! Property-based integration tests: randomized data sets and queries, checking the
//! index-agnostic invariants that the paper's correctness arguments rest on.

use proptest::prelude::*;

use p2hnns::{
    BallTreeBuilder, BcTreeBuilder, HyperplaneQuery, LinearScan, P2hIndex, PointSet, Scalar,
    SearchParams,
};

/// Strategy: a small random raw data set (rows of equal length) plus a random query.
fn small_problem() -> impl Strategy<Value = (Vec<Vec<Scalar>>, Vec<Scalar>, Scalar)> {
    (2usize..6).prop_flat_map(|dim| {
        let rows =
            proptest::collection::vec(proptest::collection::vec(-20.0f32..20.0, dim), 10..120);
        let normal = proptest::collection::vec(-5.0f32..5.0, dim);
        let bias = -20.0f32..20.0;
        (rows, normal, bias)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The trees return exactly the linear-scan answer on arbitrary data.
    #[test]
    fn trees_match_linear_scan_on_random_data((rows, normal, bias) in small_problem()) {
        prop_assume!(normal.iter().map(|x| x * x).sum::<Scalar>().sqrt() > 1e-3);
        let points = PointSet::augment(&rows).unwrap();
        let query = HyperplaneQuery::from_normal_and_bias(&normal, bias).unwrap();
        let scan = LinearScan::new(points.clone());
        let k = 5.min(rows.len());
        let exact = scan.search_exact(&query, k);

        let ball = BallTreeBuilder::new(8).build(&points).unwrap();
        let bc = BcTreeBuilder::new(8).build(&points).unwrap();
        prop_assert_eq!(ball.search_exact(&query, k).distances(), exact.distances());
        prop_assert_eq!(bc.search_exact(&query, k).distances(), exact.distances());
    }

    /// Structural invariants hold for every randomly generated data set.
    #[test]
    fn tree_invariants_hold_on_random_data((rows, _normal, _bias) in small_problem()) {
        let points = PointSet::augment(&rows).unwrap();
        let ball = BallTreeBuilder::new(16).build(&points).unwrap();
        ball.check_invariants().unwrap();
        let bc = BcTreeBuilder::new(16).build(&points).unwrap();
        bc.check_invariants().unwrap();
    }

    /// Scaling the query coefficients by any positive constant never changes the result
    /// ranking (the query-normalization invariance of Section II).
    #[test]
    fn query_scale_invariance(
        (rows, normal, bias) in small_problem(),
        scale in 0.01f32..100.0,
    ) {
        prop_assume!(normal.iter().map(|x| x * x).sum::<Scalar>().sqrt() > 1e-3);
        let points = PointSet::augment(&rows).unwrap();
        let bc = BcTreeBuilder::new(8).build(&points).unwrap();
        let q1 = HyperplaneQuery::from_normal_and_bias(&normal, bias).unwrap();
        let scaled: Vec<Scalar> = normal.iter().map(|x| x * scale).collect();
        let q2 = HyperplaneQuery::from_normal_and_bias(&scaled, bias * scale).unwrap();
        let k = 3.min(rows.len());
        let r1 = bc.search_exact(&q1, k);
        let r2 = bc.search_exact(&q2, k);
        for (a, b) in r1.distances().iter().zip(r2.distances().iter()) {
            prop_assert!((a - b).abs() < 1e-2 * (1.0 + a.abs()));
        }
    }

    /// The returned distances are always sorted, non-negative, and consistent with the
    /// reported indices.
    #[test]
    fn results_are_sorted_and_consistent((rows, normal, bias) in small_problem()) {
        prop_assume!(normal.iter().map(|x| x * x).sum::<Scalar>().sqrt() > 1e-3);
        let points = PointSet::augment(&rows).unwrap();
        let query = HyperplaneQuery::from_normal_and_bias(&normal, bias).unwrap();
        let bc = BcTreeBuilder::new(8).build(&points).unwrap();
        let result = bc.search(&query, &SearchParams::approximate(4, rows.len() / 2 + 1));
        let d = result.distances();
        prop_assert!(d.windows(2).all(|w| w[0] <= w[1]), "distances sorted");
        for n in &result.neighbors {
            prop_assert!(n.distance >= 0.0);
            prop_assert!(n.index < rows.len());
            let direct = query.p2h_distance(points.point(n.index));
            prop_assert!((direct - n.distance).abs() < 1e-3 * (1.0 + direct.abs()));
        }
    }

    /// A candidate budget never causes more verifications than the budget allows, and
    /// never returns a worse answer than a smaller budget.
    #[test]
    fn budgets_are_respected_and_monotone((rows, normal, bias) in small_problem()) {
        prop_assume!(normal.iter().map(|x| x * x).sum::<Scalar>().sqrt() > 1e-3);
        prop_assume!(rows.len() >= 20);
        let points = PointSet::augment(&rows).unwrap();
        let query = HyperplaneQuery::from_normal_and_bias(&normal, bias).unwrap();
        let bc = BcTreeBuilder::new(8).build(&points).unwrap();
        let small = bc.search(&query, &SearchParams::approximate(1, 5));
        let large = bc.search(&query, &SearchParams::approximate(1, rows.len()));
        prop_assert!(small.stats.candidates_verified <= 5);
        prop_assert!(large.neighbors[0].distance <= small.neighbors[0].distance + 1e-6);
    }
}
