//! Offline stand-in for the subset of the `bytes` crate used by the workspace's data IO:
//! little-endian get/put of integers and floats over owned byte buffers. No shared-slice
//! refcounting — [`Bytes`] is a plain owned buffer with a read cursor, which is all the
//! fvecs/native readers need.

#![warn(missing_docs)]

use std::ops::Deref;

/// Read-side cursor operations (subset of `bytes::Buf`).
pub trait Buf {
    /// Number of unread bytes.
    fn remaining(&self) -> usize;

    /// Reads `dst.len()` bytes into `dst`, advancing the cursor.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Whether any unread bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads a little-endian `i32`, advancing the cursor.
    fn get_i32_le(&mut self) -> i32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        i32::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`, advancing the cursor.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`, advancing the cursor.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f32`, advancing the cursor.
    fn get_f32_le(&mut self) -> f32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        f32::from_le_bytes(b)
    }
}

/// Write-side append operations (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a little-endian `i32`.
    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// An owned, immutable byte buffer with a read cursor.
#[derive(Debug, Clone, Default)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(src: &[u8]) -> Self {
        Self { data: src.to_vec(), pos: 0 }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data, pos: 0 }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "Bytes: read past end of buffer");
        dst.copy_from_slice(&self.data[self.pos..self.pos + dst.len()]);
        self.pos += dst.len();
    }
}

/// A growable byte buffer for building binary payloads.
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with pre-reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self { data: Vec::with_capacity(capacity) }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_little_endian_values() {
        let mut buf = BytesMut::with_capacity(24);
        buf.put_i32_le(-7);
        buf.put_u32_le(42);
        buf.put_u64_le(u64::MAX - 1);
        buf.put_f32_le(1.5);
        buf.put_slice(b"xy");

        let mut bytes = Bytes::copy_from_slice(&buf);
        assert_eq!(bytes.remaining(), 22);
        assert_eq!(bytes.get_i32_le(), -7);
        assert_eq!(bytes.get_u32_le(), 42);
        assert_eq!(bytes.get_u64_le(), u64::MAX - 1);
        assert_eq!(bytes.get_f32_le(), 1.5);
        let mut tail = [0u8; 2];
        bytes.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xy");
        assert!(!bytes.has_remaining());
    }

    #[test]
    #[should_panic(expected = "read past end")]
    fn overread_panics() {
        let mut bytes = Bytes::from(vec![1u8, 2]);
        let _ = bytes.get_u32_le();
    }
}
