//! Offline stand-in for the `to_string` / `from_str` subset of `serde_json`, backed by
//! the direct-to-JSON model of the sibling `serde` shim. Output is compact
//! (`{"key":value}` with no whitespace), matching real serde_json's `to_string`.

#![warn(missing_docs)]

pub use serde::DeError as Error;

/// Serializes a value to a compact JSON string.
///
/// # Errors
///
/// Never fails for the types this workspace serializes; the `Result` mirrors the real
/// serde_json signature so call sites are source-compatible.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize_json(&mut out);
    Ok(out)
}

/// Parses a JSON string into a value.
///
/// # Errors
///
/// Returns an error on malformed JSON or a structural mismatch with `T`.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let value = serde::parse(text)?;
    T::deserialize_json(&value)
}

#[cfg(test)]
mod tests {
    #[test]
    fn round_trips_via_the_serde_shim() {
        let data: Vec<Option<f64>> = vec![Some(1.5), None, Some(-3.0)];
        let text = super::to_string(&data).unwrap();
        assert_eq!(text, "[1.5,null,-3]");
        let back: Vec<Option<f64>> = super::from_str(&text).unwrap();
        assert_eq!(back, data);
        assert!(super::from_str::<Vec<u32>>("not json").is_err());
    }
}
