//! Offline stand-in for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build environment has no network access, so the real `rand` crate cannot be
//! vendored. This shim reimplements exactly the surface the workspace needs — seeded
//! [`rngs::StdRng`], [`Rng::gen_range`] / [`Rng::gen`], [`SeedableRng::seed_from_u64`],
//! the [`distributions::Open01`] distribution, and [`seq::SliceRandom::shuffle`] — on top
//! of the SplitMix64/xoshiro256++ generators, which are high-quality, tiny, and need no
//! dependencies. Streams are deterministic per seed but are **not** bit-compatible with
//! the real `rand` crate; nothing in the workspace relies on the exact stream, only on
//! seeded reproducibility.

#![warn(missing_docs)]

/// Core trait: a source of uniformly distributed 64-bit values plus the convenience
/// sampling methods the workspace calls (`gen_range`, `gen`).
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value uniformly from `range` (e.g. `0..n`, `-1.0..1.0`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(&mut RngDyn(self))
    }

    /// Samples a value of type `T` from its standard distribution (uniform bits for
    /// integers, uniform `[0, 1)` for floats).
    fn gen<T: Standardable>(&mut self) -> T {
        T::from_rng(&mut RngDyn(self))
    }

    /// Returns `true` with probability `p` (`p` clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let unit: f64 = self.gen();
        unit < p
    }
}

/// Helper wrapper so provided methods with generic parameters can hand a `&mut dyn`-like
/// borrow to the sampling traits without requiring `Self: Sized`.
struct RngDyn<'a, R: ?Sized>(&'a mut R);

impl<R: Rng + ?Sized> Rng for RngDyn<'_, R> {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Seeding support, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce.
pub trait Standardable {
    /// Samples one value from the implementing type's standard distribution.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standardable for f64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standardable for f32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standardable for u64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standardable for u32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standardable for bool {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
///
/// Implemented generically over [`SampleUniform`] element types (one blanket impl per
/// range shape, like the real `rand`), which is what lets unsuffixed float literals in
/// `gen_range(-1.0..1.0)` infer their type from the call site.
pub trait SampleRange<T> {
    /// Samples a value uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Element types that can be drawn uniformly from a range.
pub trait SampleUniform: Sized {
    /// Samples uniformly from `[start, end)` (`end` exclusive).
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;
    /// Samples uniformly from `[start, end]` (`end` inclusive).
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

macro_rules! int_uniform_impl {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self {
                assert!(start < end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128;
                // Multiply-shift rejection-free mapping; bias is < 2^-64 per sample,
                // far below anything observable in these workloads.
                let hi = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                (start as i128 + hi as i128) as $t
            }

            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self {
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let hi = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                (start as i128 + hi as i128) as $t
            }
        }
    )*};
}

int_uniform_impl!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! float_uniform_impl {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self {
                assert!(start < end, "gen_range: empty range");
                let unit: $t = Standardable::from_rng(rng);
                start + unit * (end - start)
            }

            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self {
                assert!(start <= end, "gen_range: empty range");
                if start == end {
                    return start;
                }
                // The half-open distinction is below float resolution for these uses.
                Self::sample_half_open(rng, start, end)
            }
        }
    )*};
}

float_uniform_impl!(f32, f64);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256++ seeded via SplitMix64.
    ///
    /// Not bit-compatible with `rand::rngs::StdRng` (which is ChaCha12), but fully
    /// deterministic per seed, which is the only property the workspace relies on.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the standard way to seed xoshiro.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self { s: [next(), next(), next(), next()] }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }
}

/// Distributions, mirroring `rand::distributions`.
pub mod distributions {
    use super::Rng;

    /// A distribution that can be sampled with an [`Rng`].
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform on the open interval `(0, 1)`.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Open01;

    impl Distribution<f64> for Open01 {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            // 52 mantissa bits plus a half-ulp offset keeps the value strictly in (0, 1).
            ((rng.next_u64() >> 12) as f64 + 0.5) * (1.0 / (1u64 << 52) as f64)
        }
    }

    impl Distribution<f32> for Open01 {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
            ((rng.next_u64() >> 41) as f32 + 0.5) * (1.0 / (1u64 << 23) as f32)
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Shuffling support for slices.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Open01};
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let i = rng.gen_range(3..17usize);
            assert!((3..17).contains(&i));
            let f = rng.gen_range(-2.5f32..4.0);
            assert!((-2.5..4.0).contains(&f));
            let o: f64 = Open01.sample(&mut rng);
            assert!(o > 0.0 && o < 1.0);
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn range_endpoints_are_reachable() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle should move something");
    }
}
