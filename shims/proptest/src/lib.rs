//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The real proptest crate cannot be vendored in this offline environment. This shim
//! keeps the same testing shape — [`Strategy`] values sampled per case, the
//! [`proptest!`] macro generating `#[test]` functions, [`prop_assume!`] rejecting cases
//! and [`prop_assert!`]/[`prop_assert_eq!`] failing them — but drops shrinking: a failing
//! case reports its values (via the assertion message) without minimization. Sampling is
//! deterministic per test function (the RNG is seeded from the test name), so failures
//! reproduce across runs.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng as _};

/// The per-test deterministic random source handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Creates a generator seeded from the test name, so every test has a distinct but
    /// reproducible stream.
    pub fn deterministic(test_name: &str) -> Self {
        // FNV-1a over the name.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in test_name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self(StdRng::seed_from_u64(hash))
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was rejected by [`prop_assume!`]; the runner draws a fresh one.
    Reject,
    /// An assertion failed; the runner panics with this message.
    Fail(String),
}

/// Runner configuration (subset of proptest's `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A recipe for generating random values of an associated type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Builds a dependent strategy from each sampled value (e.g. pick a dimension, then
    /// vectors of that dimension).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Maps each sampled value through a function.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let intermediate = self.inner.sample(rng);
        (self.f)(intermediate).sample(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(f32, f64, usize, u64, u32, i64, i32);

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
);

/// A constant "strategy" wrapping an already-known value (the `Just` of proptest).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng as _;

    /// Sizes accepted by [`vec`]: a fixed length or a half-open range of lengths.
    pub trait SizeRange {
        /// Draws a concrete length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            rng.0.gen_range(self.clone())
        }
    }

    /// Strategy producing `Vec`s of values drawn from `element`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, size: L) -> VecStrategy<S, L> {
        VecStrategy { element, size }
    }

    /// The strategy type returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, L> {
        element: S,
        size: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.sample_len(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a test module needs: traits, config, and the macros.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Rejects the current case (the runner draws a fresh one) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        // `match` instead of `if !cond` keeps clippy's neg_cmp_op_on_partial_ord quiet
        // at every expansion site (float comparisons are the common case here).
        match $cond {
            true => {}
            false => return ::std::result::Result::Err($crate::TestCaseError::Reject),
        }
    };
}

/// Fails the current case with a message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        match $cond {
            true => {}
            false => {
                return ::std::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                    "assertion failed: {}",
                    stringify!($cond)
                )))
            }
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        match $cond {
            true => {}
            false => {
                return ::std::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                    $($fmt)*
                )))
            }
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assertion failed: `{:?}` != `{:?}`",
                left,
                right
            )));
        }
    }};
}

/// Declares property tests: each function samples its arguments from the given
/// strategies and runs the body for the configured number of accepted cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(50).max(2_000);
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts <= max_attempts,
                    "proptest shim: too many cases rejected by prop_assume \
                     ({accepted}/{} accepted after {attempts} attempts)",
                    config.cases
                );
                let ($($pat,)+) = ($($crate::Strategy::sample(&($strategy), &mut rng),)+);
                let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => continue,
                    ::std::result::Result::Err($crate::TestCaseError::Fail(message)) => {
                        panic!("proptest case #{accepted} failed: {message}");
                    }
                }
            }
        }
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn strategies_sample_in_bounds() {
        let mut rng = super::TestRng::deterministic("bounds");
        for _ in 0..500 {
            let f = (0.5f32..2.0).sample(&mut rng);
            assert!((0.5..2.0).contains(&f));
            let v = collection::vec(-1.0f64..1.0, 3..7).sample(&mut rng);
            assert!((3..7).contains(&v.len()));
            assert!(v.iter().all(|x| (-1.0..1.0).contains(x)));
            let (a, b) = ((0usize..4), (10u32..12)).sample(&mut rng);
            assert!(a < 4 && (10..12).contains(&b));
        }
    }

    #[test]
    fn flat_map_feeds_dependent_strategies() {
        let strategy = (2usize..5).prop_flat_map(|n| collection::vec(0.0f32..1.0, n));
        let mut rng = super::TestRng::deterministic("flat_map");
        for _ in 0..100 {
            let v = strategy.sample(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_working_tests(x in 0.0f32..1.0, n in 1usize..5) {
            prop_assume!(x > 0.01);
            prop_assert!(x < 1.0, "x was {}", x);
            prop_assert_eq!(n * 2 / 2, n);
        }
    }
}
