//! Offline stand-in for the subset of `serde` this workspace uses.
//!
//! The build environment has no network access, so the real `serde` cannot be vendored.
//! The workspace only ever serializes plain-old-data structs to JSON and back (report
//! records, search statistics), so this shim replaces serde's data model with a direct
//! JSON one: [`Serialize`] writes compact JSON text, [`Deserialize`] reads from a parsed
//! [`Value`] tree. The derive macros ([`macro@Serialize`] / [`macro@Deserialize`], from
//! the sibling `serde_derive` shim) generate field-by-field impls compatible with
//! `serde_json`'s compact output format (`{"key":value,...}`, enums as `"Variant"`).

#![warn(missing_docs)]

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// Types that can be written as JSON.
pub trait Serialize {
    /// Appends the compact JSON encoding of `self` to `out`.
    fn serialize_json(&self, out: &mut String);
}

/// Types that can be read back from a parsed JSON [`Value`].
pub trait Deserialize: Sized {
    /// Builds `Self` from a JSON value.
    ///
    /// # Errors
    ///
    /// Returns a [`DeError`] describing the first structural or type mismatch.
    fn deserialize_json(value: &Value) -> Result<Self, DeError>;
}

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number, kept as its original text so integer precision is never lost.
    Number(String),
    /// A string (already unescaped).
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in source order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization error: a human-readable description of the first mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Helper used by the derive macro: fetches and deserializes one object field.
///
/// # Errors
///
/// Returns an error if `value` is not an object, the key is missing, or the field fails
/// to deserialize.
pub fn field<T: Deserialize>(value: &Value, key: &str) -> Result<T, DeError> {
    match value.get(key) {
        Some(v) => T::deserialize_json(v).map_err(|e| DeError(format!("field `{key}`: {}", e.0))),
        None => {
            // Missing keys deserialize as `null`, which lets `Option` fields default to
            // `None` (mirroring #[serde(default)]-free serde_json behaviour closely
            // enough for this workspace, which always serializes every field).
            T::deserialize_json(&Value::Null).map_err(|_| DeError(format!("missing field `{key}`")))
        }
    }
}

/// Writes a JSON string literal (with escaping) to `out`.
pub fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                out.push_str(itoa_buf(&mut [0u8; 40], *self as i128));
            }
        }
        impl Deserialize for $t {
            fn deserialize_json(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Number(text) => text.parse::<$t>().map_err(|_| {
                        DeError(format!("`{text}` is not a valid {}", stringify!($t)))
                    }),
                    other => Err(DeError(format!(
                        "expected a number for {}, got {other:?}",
                        stringify!($t)
                    ))),
                }
            }
        }
    )*};
}

int_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Minimal integer-to-string without allocation churn.
fn itoa_buf(buf: &mut [u8; 40], mut v: i128) -> &str {
    let neg = v < 0;
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10).unsigned_abs() as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    if neg {
        i -= 1;
        buf[i] = b'-';
    }
    std::str::from_utf8(&buf[i..]).expect("ascii digits")
}

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                if self.is_finite() {
                    // Rust's Display prints the shortest representation that round-trips,
                    // which is all the workspace needs (it never compares JSON text of
                    // floats, only parsed values).
                    let text = format!("{}", self);
                    out.push_str(&text);
                    // serde_json always marks floats as floats; keep integers parseable
                    // as either by leaving them bare (both sides parse via from_str).
                } else {
                    // serde_json errors on non-finite floats; emitting null matches its
                    // `arbitrary_precision`-free lossy mode closely enough for reports.
                    out.push_str("null");
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize_json(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Number(text) => text.parse::<$t>().map_err(|_| {
                        DeError(format!("`{text}` is not a valid {}", stringify!($t)))
                    }),
                    other => Err(DeError(format!(
                        "expected a number for {}, got {other:?}",
                        stringify!($t)
                    ))),
                }
            }
        }
    )*};
}

float_impls!(f32, f64);

impl Serialize for bool {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Deserialize for bool {
    fn deserialize_json(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError(format!("expected a bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        write_escaped(self, out);
    }
}

impl Serialize for str {
    fn serialize_json(&self, out: &mut String) {
        write_escaped(self, out);
    }
}

impl Deserialize for String {
    fn deserialize_json(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError(format!("expected a string, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            Some(v) => v.serialize_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_json(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize_json(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        for (i, item) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            item.serialize_json(out);
        }
        out.push(']');
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_json(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::deserialize_json).collect(),
            other => Err(DeError(format!("expected an array, got {other:?}"))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, out: &mut String) {
        (*self).serialize_json(out);
    }
}

/// Parses a JSON document into a [`Value`] tree.
///
/// # Errors
///
/// Returns a [`DeError`] describing the position and nature of the first syntax error.
pub fn parse(text: &str) -> Result<Value, DeError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(DeError(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), DeError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(DeError(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, DeError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(DeError(format!(
                "unexpected character {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, DeError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(DeError(format!("invalid keyword at byte {}", self.pos)))
        }
    }

    fn parse_number(&mut self) -> Result<Value, DeError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| DeError("non-utf8 number".into()))?;
        if text.is_empty() || text == "-" {
            return Err(DeError(format!("invalid number at byte {start}")));
        }
        Ok(Value::Number(text.to_string()))
    }

    fn parse_string(&mut self) -> Result<String, DeError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(DeError("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| DeError("truncated \\u escape".into()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| DeError("bad \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| DeError("bad \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| DeError("bad \\u code point".into()))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(DeError(format!(
                                "bad escape {:?}",
                                other.map(|c| c as char)
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| DeError("non-utf8 string".into()))?;
                    let c = rest.chars().next().expect("peeked a byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, DeError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(DeError(format!(
                        "expected `,` or `]`, found {:?}",
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, DeError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => {
                    return Err(DeError(format!(
                        "expected `,` or `}}`, found {:?}",
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut out = String::new();
        42u64.serialize_json(&mut out);
        (-7i32).serialize_json(&mut out);
        assert_eq!(out, "42-7");

        let v = parse("18446744073709551615").unwrap();
        assert_eq!(u64::deserialize_json(&v).unwrap(), u64::MAX);

        let v = parse("-1.5e3").unwrap();
        assert_eq!(f64::deserialize_json(&v).unwrap(), -1500.0);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let mut out = String::new();
        "a\"b\\c\nd".to_string().serialize_json(&mut out);
        assert_eq!(out, r#""a\"b\\c\nd""#);
        let v = parse(&out).unwrap();
        assert_eq!(String::deserialize_json(&v).unwrap(), "a\"b\\c\nd");
    }

    #[test]
    fn containers_round_trip() {
        let data: Vec<Option<u32>> = vec![Some(1), None, Some(3)];
        let mut out = String::new();
        data.serialize_json(&mut out);
        assert_eq!(out, "[1,null,3]");
        let v = parse(&out).unwrap();
        assert_eq!(Vec::<Option<u32>>::deserialize_json(&v).unwrap(), data);
    }

    #[test]
    fn object_lookup_and_errors() {
        let v = parse(r#"{"a": 1, "b": [true, false]}"#).unwrap();
        assert_eq!(u32::deserialize_json(v.get("a").unwrap()).unwrap(), 1);
        assert!(field::<u32>(&v, "missing").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
    }
}
