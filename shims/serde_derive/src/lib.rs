//! Derive macros for the offline `serde` shim.
//!
//! Supports exactly the shapes this workspace derives on: structs with named fields and
//! enums with unit variants, both without generics. The macros generate impls of the
//! shim's direct-to-JSON `Serialize` / `Deserialize` traits (see the `serde` shim crate).
//! Parsing is done by hand over the raw token stream — `syn`/`quote` are unavailable in
//! this offline environment, and the supported grammar is small enough not to need them.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What the input item turned out to be.
enum Item {
    /// Struct name + named field identifiers, in declaration order.
    Struct(String, Vec<String>),
    /// Enum name + unit variant identifiers.
    Enum(String, Vec<String>),
}

/// Parses the derive input: skips attributes and visibility, reads `struct`/`enum`, the
/// type name, and the braced body. Panics with a clear message on unsupported shapes
/// (tuple structs, generics, data-carrying enum variants), which surfaces as a compile
/// error at the derive site.
fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();

    // Skip outer attributes (`#[...]`, including doc comments) and visibility.
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                // Optional `(crate)` / `(super)` restriction.
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected a type name, got {other:?}"),
    };
    if matches!(&tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive: generic types are not supported (deriving `{name}`)");
    }
    let body = match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!(
            "serde shim derive: `{name}` must have a braced body (tuple/unit items \
             are not supported), got {other:?}"
        ),
    };

    match kind.as_str() {
        "struct" => Item::Struct(name, parse_named_fields(body)),
        "enum" => Item::Enum(name, parse_unit_variants(body)),
        other => panic!("serde shim derive: unsupported item kind `{other}`"),
    }
}

/// Extracts field names from a named-field struct body, skipping attributes, visibility,
/// and type tokens (commas inside `<...>` do not split fields).
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = body.into_iter().peekable();
    'fields: loop {
        // Skip attributes and visibility before the field name.
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    tokens.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    tokens.next();
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                None => break 'fields,
                _ => break,
            }
        }
        let name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde shim derive: expected a field name, got {other:?}"),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!(
                "serde shim derive: expected `:` after field `{name}` \
                 (tuple structs are unsupported), got {other:?}"
            ),
        }
        fields.push(name);
        // Skip the type up to the next top-level comma (angle brackets tracked by hand).
        let mut angle_depth = 0i32;
        for token in tokens.by_ref() {
            match token {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => continue 'fields,
                _ => {}
            }
        }
        break;
    }
    fields
}

/// Extracts variant names from an enum body, requiring every variant to be a unit
/// variant (no fields, no discriminants).
fn parse_unit_variants(body: TokenStream) -> Vec<String> {
    let mut variants = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        // Skip attributes (e.g. `#[default]`, doc comments).
        while matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            tokens.next();
            tokens.next();
        }
        match tokens.next() {
            None => break,
            Some(TokenTree::Ident(id)) => variants.push(id.to_string()),
            other => panic!("serde shim derive: expected a variant name, got {other:?}"),
        }
        match tokens.next() {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            other => {
                panic!("serde shim derive: only unit enum variants are supported, got {other:?}")
            }
        }
    }
    variants
}

/// Derives the shim's `Serialize` (compact-JSON writer) for a struct or unit enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Item::Struct(name, fields) => {
            let mut body = String::from("out.push('{');\n");
            for (i, field) in fields.iter().enumerate() {
                if i > 0 {
                    body.push_str("out.push(',');\n");
                }
                body.push_str(&format!(
                    "out.push_str(\"\\\"{field}\\\":\");\n\
                     ::serde::Serialize::serialize_json(&self.{field}, out);\n"
                ));
            }
            body.push_str("out.push('}');");
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize_json(&self, out: &mut ::std::string::String) {{\n{body}\n}}\n\
                 }}"
            )
        }
        Item::Enum(name, variants) => {
            let arms: String =
                variants.iter().map(|v| format!("Self::{v} => \"{v}\",\n")).collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize_json(&self, out: &mut ::std::string::String) {{\n\
                         let variant = match self {{ {arms} }};\n\
                         ::serde::write_escaped(variant, out);\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("serde shim derive: generated invalid Rust")
}

/// Derives the shim's `Deserialize` (from a parsed JSON `Value`) for a struct or unit
/// enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Item::Struct(name, fields) => {
            let inits: String =
                fields.iter().map(|f| format!("{f}: ::serde::field(value, \"{f}\")?,\n")).collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize_json(value: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         ::std::result::Result::Ok(Self {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum(name, variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("\"{v}\" => ::std::result::Result::Ok(Self::{v}),\n"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize_json(value: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match value {{\n\
                             ::serde::Value::String(s) => match s.as_str() {{\n\
                                 {arms}\n\
                                 other => ::std::result::Result::Err(::serde::DeError(\n\
                                     ::std::format!(\"unknown {name} variant `{{other}}`\"))),\n\
                             }},\n\
                             other => ::std::result::Result::Err(::serde::DeError(\n\
                                 ::std::format!(\"expected a string for {name}, got {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("serde shim derive: generated invalid Rust")
}
