//! Offline stand-in for the Criterion benchmarking API surface this workspace uses.
//!
//! The real Criterion crate cannot be vendored in this offline environment, so this shim
//! provides a source-compatible subset — [`Criterion`], [`criterion_group!`],
//! [`criterion_main!`], benchmark groups, `iter` / `iter_batched`, [`black_box`] — with a
//! deliberately simple measurement loop: a short warm-up, then timed batches until a
//! small time budget is exhausted, reporting mean time per iteration. No statistics,
//! plots, or baselines; good enough to compare kernels and spot regressions by hand.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Time budget spent measuring each benchmark function.
const MEASURE_BUDGET: Duration = Duration::from_millis(300);
/// Warm-up iterations before measurement starts.
const WARMUP_ITERS: u64 = 3;

/// The benchmark driver handed to `criterion_group!` functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        println!("\ngroup {name}");
        BenchmarkGroup { name, _sample_size: 0 }
    }

    /// Registers and immediately runs one benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{id}"), f);
    }
}

/// A named collection of benchmarks (subset of Criterion's `BenchmarkGroup`).
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    _sample_size: usize,
}

impl BenchmarkGroup {
    /// Accepted for source compatibility; the shim's fixed time budget ignores it.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self._sample_size = n;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{id}", self.name), f);
        self
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&format!("{}/{}", self.name, id.0), |b| f(b, input));
        self
    }

    /// Ends the group (no-op in the shim; mirrors Criterion's API).
    pub fn finish(self) {}
}

/// A benchmark identifier (subset of Criterion's `BenchmarkId`).
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id from a single parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self(format!("{parameter}"))
    }

    /// Builds an id from a function name and a parameter value.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        Self(format!("{name}/{parameter}"))
    }
}

/// How batched inputs are grouped (accepted for source compatibility; the shim always
/// runs one setup per measured iteration).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// The per-benchmark timing harness passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Measures `routine` repeatedly until the time budget is exhausted.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        let deadline = Instant::now() + MEASURE_BUDGET;
        while Instant::now() < deadline {
            let start = Instant::now();
            black_box(routine());
            self.total += start.elapsed();
            self.iters += 1;
        }
    }

    /// Measures `routine` on inputs produced by `setup`; only `routine` is timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let deadline = Instant::now() + MEASURE_BUDGET;
        while Instant::now() < deadline {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.total += start.elapsed();
            self.iters += 1;
        }
    }
}

/// Runs one benchmark closure and prints its mean iteration time.
fn run_benchmark<F>(label: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher::default();
    f(&mut bencher);
    if bencher.iters == 0 {
        println!("  {label}: no iterations recorded");
        return;
    }
    let mean_ns = bencher.total.as_nanos() as f64 / bencher.iters as f64;
    let (value, unit) = if mean_ns >= 1.0e9 {
        (mean_ns / 1.0e9, "s")
    } else if mean_ns >= 1.0e6 {
        (mean_ns / 1.0e6, "ms")
    } else if mean_ns >= 1.0e3 {
        (mean_ns / 1.0e3, "us")
    } else {
        (mean_ns, "ns")
    };
    println!("  {label}: {value:.3} {unit}/iter ({} iters)", bencher.iters);
}

/// Declares a group function that runs each listed benchmark function in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` to run the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        let mut b = Bencher::default();
        b.iter(|| 1 + 1);
        assert!(b.iters > 0);
        let mut b = Bencher::default();
        b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
        assert!(b.iters > 0);
    }
}
